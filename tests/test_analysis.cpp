// Tests for the static schedule analyzer (src/analysis): hand-built illegal
// schedules must produce exactly the expected diagnostics, legal builder
// output must analyze clean, the Table 1 cost audit must accept every
// registered builder, and the checked par() must reject colliding merges.

#include <gtest/gtest.h>

#include <algorithm>

#include "hcmm/algo/api.hpp"
#include "hcmm/analysis/cost_audit.hpp"
#include "hcmm/analysis/legality.hpp"
#include "hcmm/analysis/passes.hpp"
#include "hcmm/analysis/placement.hpp"
#include "hcmm/analysis/symbolic.hpp"
#include "hcmm/analysis/trace.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/sim/report_io.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

using analysis::Diagnostic;
using analysis::DiagnosticList;
using analysis::Placement;
using analysis::Severity;

constexpr Tag kTagA = make_tag(1, 1);
constexpr Tag kTagB = make_tag(1, 2);

Transfer xfer(NodeId src, NodeId dst, Tag tag, bool combine = false,
              bool move_src = false) {
  return Transfer{src, dst, {tag}, combine, move_src};
}

Schedule one_round(std::vector<Transfer> ts) {
  Schedule s;
  s.rounds.push_back(Round{std::move(ts)});
  return s;
}

std::vector<std::string> codes(const DiagnosticList& dl) {
  std::vector<std::string> out;
  for (const auto& d : dl.diags()) out.push_back(d.code);
  return out;
}

bool has_code(const DiagnosticList& dl, std::string_view code) {
  const auto& ds = dl.diags();
  return std::any_of(ds.begin(), ds.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

// ---- topology pass --------------------------------------------------------

TEST(AnalysisTopology, NonLinkTransferIsError) {
  const Hypercube cube(3);
  // 0 -> 3 differs in two bits: not a hypercube link.
  const Schedule s = one_round({xfer(0, 3, kTagA)});
  const DiagnosticList dl = analysis::analyze_schedule(s, cube, PortModel::kOnePort);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "topology.not-a-link");
  EXPECT_EQ(dl.diags()[0].severity, Severity::kError);
  EXPECT_EQ(dl.diags()[0].round, 0u);
  EXPECT_EQ(dl.diags()[0].transfer, 0u);
}

TEST(AnalysisTopology, OutOfRangeAndEmptyTags) {
  const Hypercube cube(2);
  Schedule s = one_round({xfer(0, 9, kTagA)});
  s.rounds.push_back(Round{{Transfer{0, 1, {}, false, false}}});
  const DiagnosticList dl = analysis::analyze_schedule(s, cube, PortModel::kOnePort);
  EXPECT_TRUE(has_code(dl, "topology.endpoint-range"));
  EXPECT_TRUE(has_code(dl, "topology.empty-tags"));
}

// ---- port pass ------------------------------------------------------------

TEST(AnalysisPort, OnePortDoubleSendIsError) {
  const Hypercube cube(3);
  // Node 0 sends on two different links in one round: legal multi-port,
  // a one-port violation.
  const Schedule s = one_round({xfer(0, 1, kTagA), xfer(0, 2, kTagB)});
  const DiagnosticList one =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.diags()[0].code, "port.double-send");
  EXPECT_EQ(one.diags()[0].round, 0u);
  EXPECT_EQ(one.diags()[0].transfer, 1u);
  EXPECT_TRUE(
      analysis::analyze_schedule(s, cube, PortModel::kMultiPort).empty());
}

TEST(AnalysisPort, OnePortConcurrentSendRecvIsLegal) {
  const Hypercube cube(1);
  const Schedule s = one_round({xfer(0, 1, kTagA), xfer(1, 0, kTagB)});
  EXPECT_TRUE(analysis::analyze_schedule(s, cube, PortModel::kOnePort).empty());
}

TEST(AnalysisPort, MultiPortSameLinkCollisionIsError) {
  const Hypercube cube(3);
  // Two transfers both drive link dimension 0 out of node 0.
  const Schedule s = one_round({xfer(0, 1, kTagA), xfer(0, 1, kTagB)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kMultiPort);
  EXPECT_TRUE(has_code(dl, "port.double-send"));
  EXPECT_TRUE(has_code(dl, "port.double-recv"));
}

// ---- dataflow pass --------------------------------------------------------

TEST(AnalysisDataflow, SilentWithoutInitialPlacement) {
  const Hypercube cube(1);
  const Schedule s = one_round({xfer(0, 1, kTagA)});
  EXPECT_TRUE(analysis::analyze_schedule(s, cube, PortModel::kOnePort).empty());
}

TEST(AnalysisDataflow, AbsentTagIsError) {
  const Hypercube cube(1);
  Placement init;  // empty: node 0 holds nothing
  const Schedule s = one_round({xfer(0, 1, kTagA)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.absent-tag");
}

TEST(AnalysisDataflow, UseAfterMoveIsError) {
  const Hypercube cube(2);
  Placement init;
  init.add(0, kTagA, 4);
  Schedule s = one_round({xfer(0, 1, kTagA, false, /*move_src=*/true)});
  s.append(one_round({xfer(0, 2, kTagA)}));
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.use-after-move");
  EXPECT_EQ(dl.diags()[0].round, 1u);
}

TEST(AnalysisDataflow, CombineIntoAbsentIsError) {
  const Hypercube cube(1);
  Placement init;
  init.add(0, kTagA, 4);  // node 1 has no copy to combine into
  const Schedule s = one_round({xfer(0, 1, kTagA, /*combine=*/true)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.combine-into-absent");
}

TEST(AnalysisDataflow, CombineSizeMismatchIsError) {
  const Hypercube cube(1);
  Placement init;
  init.add(0, kTagA, 4);
  init.add(1, kTagA, 8);
  const Schedule s = one_round({xfer(0, 1, kTagA, /*combine=*/true)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  EXPECT_TRUE(has_code(dl, "dataflow.combine-size-mismatch"));
}

TEST(AnalysisDataflow, DuplicateDeliveryIsError) {
  const Hypercube cube(1);
  Placement init;
  init.add(0, kTagA, 4);
  init.add(1, kTagA, 4);  // destination already holds the tag
  const Schedule s = one_round({xfer(0, 1, kTagA)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.duplicate-delivery");
}

TEST(AnalysisDataflow, DeadTransferIsWarning) {
  const Hypercube cube(2);
  Placement init;
  init.add(0, kTagA, 4);
  init.add(0, kTagB, 4);
  // kTagA reaches node 1 (required in the final placement); kTagB's hop to
  // node 2 is read by nobody and required nowhere: dead.
  Schedule s = one_round({xfer(0, 1, kTagA)});
  s.append(one_round({xfer(0, 2, kTagB)}));
  Placement want;
  want.add(1, kTagA);
  const DiagnosticList dl = analysis::analyze_schedule(
      s, cube, PortModel::kOnePort, &init, &want);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.dead-transfer");
  EXPECT_EQ(dl.diags()[0].severity, Severity::kWarning);
  EXPECT_EQ(dl.diags()[0].round, 1u);
}

TEST(AnalysisDataflow, ForwardedItemIsNotDead) {
  const Hypercube cube(2);
  Placement init;
  init.add(0, kTagA, 4);
  // 0 -> 1 -> 3: the first hop is read by the second, the second by the
  // final placement; neither is dead.
  Schedule s = one_round({xfer(0, 1, kTagA)});
  s.append(one_round({xfer(1, 3, kTagA, false, /*move_src=*/true)}));
  Placement want;
  want.add(3, kTagA);
  EXPECT_TRUE(analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init,
                                         &want)
                  .empty());
}

TEST(AnalysisDataflow, MissingFinalItemIsError) {
  const Hypercube cube(1);
  Placement init;
  init.add(0, kTagA, 4);
  const Schedule s;  // nothing moves
  Placement want;
  want.add(1, kTagA);
  const DiagnosticList dl = analysis::analyze_schedule(
      s, cube, PortModel::kOnePort, &init, &want);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.final-missing");
}

// ---- clean schedules ------------------------------------------------------

TEST(AnalysisClean, PreparedCollectivesAnalyzeClean) {
  for (const PortModel port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    const Hypercube cube(3);
    const Subcube sc(0, cube.size() - 1);
    Machine m(cube, port, CostParams{});
    const NodeId root = 0;
    m.store().put(root, kTagA, std::vector<double>(12, 1.0));
    const Schedule s = coll::prep_bcast(m, sc, root, kTagA).schedule;
    const Placement placed = analysis::snapshot_placement(m.store());
    const DiagnosticList dl =
        analysis::analyze_schedule(s, cube, port, &placed);
    EXPECT_TRUE(dl.empty()) << to_string(port) << ":\n" << dl.to_string();
  }
}

// ---- static cost + Table 1 audit ------------------------------------------

TEST(AnalysisCost, StaticCostCountsRoundsAndCriticalWords) {
  const Hypercube cube(2);
  Placement init;
  init.add(0, kTagA, 5);
  init.add(0, kTagB, 7);
  // Round 0: node 0 sends both tags on different links.  One-port charges
  // the node port 5+7 = 12; multi-port charges per link, max(5, 7) = 7.
  // Round 1 is empty (free), so a = 1 either way.
  Schedule s = one_round({xfer(0, 1, kTagA), xfer(0, 2, kTagB)});
  s.rounds.emplace_back();
  const analysis::StaticCost one =
      analysis::static_cost(s, cube, PortModel::kOnePort, init);
  EXPECT_TRUE(one.exact);
  EXPECT_EQ(one.a, 1u);
  EXPECT_EQ(one.b, 12u);
  const analysis::StaticCost multi =
      analysis::static_cost(s, cube, PortModel::kMultiPort, init);
  EXPECT_TRUE(multi.exact);
  EXPECT_EQ(multi.a, 1u);
  EXPECT_EQ(multi.b, 7u);
}

TEST(AnalysisCost, StaticCostMatchesMachineMeasurement) {
  for (const PortModel port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    const Hypercube cube(3);
    const Subcube sc(0, cube.size() - 1);
    Machine m(cube, port, CostParams{});
    m.store().put(0, kTagA, std::vector<double>(24, 1.0));
    auto prepared = coll::prep_bcast(m, sc, 0, kTagA);
    const Placement placed = analysis::snapshot_placement(m.store());
    const analysis::StaticCost c =
        analysis::static_cost(prepared.schedule, cube, port, placed);
    m.reset_stats();
    coll::run_prepared(m, std::move(prepared));
    const PhaseStats t = m.report().totals();
    EXPECT_EQ(c.a, t.rounds) << to_string(port);
    EXPECT_EQ(static_cast<double>(c.b), t.word_cost) << to_string(port);
  }
}

TEST(AnalysisCost, AuditAcceptsAllBuilders) {
  for (const std::uint32_t dim : {2u, 3u}) {
    for (const PortModel port : {PortModel::kOnePort, PortModel::kMultiPort}) {
      const DiagnosticList dl =
          analysis::audit_collective_builders(dim, dim * 6, port);
      EXPECT_TRUE(dl.empty())
          << "dim " << dim << " " << to_string(port) << ":\n" << dl.to_string();
    }
  }
}

TEST(AnalysisCost, AuditCatchesWrongClosedForm) {
  // Sanity-check the audit machinery itself: a deliberately wrong Table 1
  // comparison must fail.  bcast on 4 nodes one-port is (2, 2M); claiming
  // all-to-all's form for it cannot match.
  const cost::CommCost bcast =
      cost::table1(cost::CollKind::kBcast, PortModel::kOnePort, 4, 12.0);
  const cost::CommCost aapc =
      cost::table1(cost::CollKind::kAllToAll, PortModel::kOnePort, 4, 12.0);
  EXPECT_NE(bcast.b, aapc.b);
}

// ---- machine delegation ---------------------------------------------------

TEST(AnalysisMachine, RuntimeValidationUsesSharedRules) {
  const Hypercube cube(3);
  Machine m(cube, PortModel::kOnePort, CostParams{});
  m.store().put(0, kTagA, std::vector<double>(4, 1.0));
  m.store().put(0, kTagB, std::vector<double>(4, 1.0));
  const Schedule bad = one_round({xfer(0, 1, kTagA), xfer(0, 2, kTagB)});
  EXPECT_THROW(m.run(bad), CheckError);
  const Schedule non_link = one_round({xfer(0, 3, kTagA)});
  EXPECT_THROW(m.run(non_link), CheckError);
}

TEST(AnalysisMachine, ObserverSeesEveryScheduleBeforeExecution) {
  const Hypercube cube(1);
  Machine m(cube, PortModel::kOnePort, CostParams{});
  m.store().put(0, kTagA, std::vector<double>(4, 1.0));
  std::size_t seen = 0;
  m.set_schedule_observer([&](const Schedule& s) {
    ++seen;
    EXPECT_EQ(s.round_count(), 1u);
    EXPECT_FALSE(m.store().has(1, kTagA));  // before execution
  });
  m.run(one_round({xfer(0, 1, kTagA)}));
  EXPECT_EQ(seen, 1u);
  EXPECT_TRUE(m.store().has(1, kTagA));
}

// ---- checked par ----------------------------------------------------------

TEST(AnalysisPar, CheckedParRejectsCollidingMerge) {
  const Hypercube cube(3);
  const Schedule p1 = one_round({xfer(0, 1, kTagA)});
  const Schedule p2 = one_round({xfer(0, 2, kTagB)});
  const Schedule parts[] = {p1, p2};
  // Unchecked merge succeeds; checked merge under one-port rejects the
  // double send and names round 0.
  EXPECT_EQ(par(parts).rounds[0].transfers.size(), 2u);
  EXPECT_NO_THROW((void)par(parts, cube, PortModel::kMultiPort));
  try {
    (void)par(parts, cube, PortModel::kOnePort);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("round 0"), std::string::npos);
  }
}

// ---- diagnostics plumbing -------------------------------------------------

TEST(AnalysisDiagnostics, SortAndFormat) {
  DiagnosticList dl;
  Diagnostic later;
  later.severity = Severity::kWarning;
  later.pass = "p";
  later.code = "b.code";
  later.round = 2;
  later.transfer = 0;
  later.message = "later";
  Diagnostic wide;  // schedule-wide: sorts last
  wide.pass = "p";
  wide.code = "c.code";
  wide.message = "wide";
  Diagnostic first;
  first.pass = "p";
  first.code = "a.code";
  first.round = 0;
  first.transfer = 1;
  first.message = "first";
  first.hint = "fix it";
  dl.add(later);
  dl.add(wide);
  dl.add(first);
  dl.sort_by_location();
  EXPECT_EQ(codes(dl),
            (std::vector<std::string>{"a.code", "b.code", "c.code"}));
  EXPECT_EQ(dl.error_count(), 2u);
  EXPECT_EQ(dl.count(Severity::kWarning), 1u);
  const std::string text = dl.diags()[0].to_string();
  EXPECT_NE(text.find("error: [a.code] round 0, transfer 1: first"),
            std::string::npos);
  EXPECT_NE(text.find("hint: fix it"), std::string::npos);
}

TEST(AnalysisDiagnostics, JsonExport) {
  DiagnosticList dl;
  Diagnostic d;
  d.pass = "port";
  d.code = "port.double-send";
  d.round = 1;
  d.transfer = 3;
  d.message = "a \"quoted\" message";
  d.hint = "h";
  dl.add(d);
  const std::string js = diagnostics_json(dl);
  EXPECT_NE(js.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"code\": \"port.double-send\""), std::string::npos);
  EXPECT_NE(js.find("\"round\": 1"), std::string::npos);
  EXPECT_NE(js.find("\\\"quoted\\\""), std::string::npos);
  // Locationless findings export null locations.
  DiagnosticList wide;
  Diagnostic w;
  w.pass = "dataflow";
  w.code = "dataflow.final-missing";
  w.message = "m";
  wide.add(w);
  EXPECT_NE(diagnostics_json(wide).find("\"round\": null"), std::string::npos);
}

TEST(AnalysisDiagnostics, SarifExport) {
  DiagnosticList dl;
  Diagnostic d1;
  d1.severity = Severity::kError;
  d1.pass = "port";
  d1.code = "port.double-send";
  d1.round = 2;
  d1.transfer = 1;
  d1.message = "two sends";
  d1.hint = "serialize them";
  dl.add(d1);
  Diagnostic d2;
  d2.severity = Severity::kWarning;
  d2.pass = "alias-lifetime";
  d2.code = "alias.part-leak";
  d2.message = "leaked part";
  dl.add(d2);
  const std::string s =
      sarif_json(dl, {"cannon on 8 nodes (one-port)", "DNS on 8 nodes"});
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"hcmm_lint\""), std::string::npos);
  // One rule per distinct code, results referencing them by index.
  EXPECT_NE(s.find("\"id\": \"port.double-send\""), std::string::npos);
  EXPECT_NE(s.find("\"id\": \"alias.part-leak\""), std::string::npos);
  EXPECT_NE(s.find("\"ruleIndex\": 0"), std::string::npos);
  EXPECT_NE(s.find("\"ruleIndex\": 1"), std::string::npos);
  EXPECT_NE(s.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(s.find("\"level\": \"warning\""), std::string::npos);
  // Hints fold into the message; locations are logical.
  EXPECT_NE(s.find("(hint: serialize them)"), std::string::npos);
  EXPECT_NE(s.find("cannon on 8 nodes (one-port)/round 2/transfer 1"),
            std::string::npos);
  // The locationless warning still names its subject.
  EXPECT_NE(s.find("\"fullyQualifiedName\": \"DNS on 8 nodes\""),
            std::string::npos);
}

// ---- trace passes: table-driven negative suite ----------------------------

using analysis::RunTrace;
using analysis::TraceEvent;

constexpr Tag kTagC = make_tag(1, 3);
constexpr Tag kPartBit = static_cast<Tag>(1) << 56;

TraceEvent op(StoreEvent ev) {
  TraceEvent te;
  te.kind = TraceEvent::Kind::kStoreOp;
  te.store = std::move(ev);
  return te;
}

void add_schedule(RunTrace& t, Schedule s) {
  TraceEvent te;
  te.kind = TraceEvent::Kind::kSchedule;
  te.schedule = t.schedules.size();
  t.schedules.push_back(std::move(s));
  t.events.push_back(std::move(te));
}

struct TraceCase {
  const char* name;
  enum class Check : std::uint8_t { kAlias, kRace, kSchedule } check;
  const char* code;       ///< every produced diagnostic must carry this code
  std::size_t count;      ///< exact number of diagnostics expected
  Severity severity;
  bool located;           ///< diagnostics must carry an event/round location
  RunTrace (*build)();
};

const TraceCase kNegativeTraces[] = {
    {"split of a split part", TraceCase::Check::kAlias, "alias.nested-split",
     1, Severity::kError, true,
     [] {
       RunTrace t;
       t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagA | kPartBit,
                              {}, {}, 8}));
       t.events.push_back(op({StoreEvent::Kind::kSplit, 0, kTagA | kPartBit,
                              {kTagB, kTagC}, {4, 4}, 8}));
       return t;
     }},
    {"split sizes do not partition the item", TraceCase::Check::kAlias,
     "alias.split-size-mismatch", 1, Severity::kError, true,
     [] {
       RunTrace t;
       t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagA, {}, {}, 8}));
       t.events.push_back(op({StoreEvent::Kind::kSplit, 0, kTagA,
                              {kTagB, kTagC}, {4, 3}, 8}));
       return t;
     }},
    {"erase of a tag a join consumed", TraceCase::Check::kAlias,
     "alias.use-after-join", 1, Severity::kError, true,
     [] {
       RunTrace t;
       t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagA, {}, {}, 4}));
       t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagB, {}, {}, 4}));
       t.events.push_back(op({StoreEvent::Kind::kJoin, 0, kTagC,
                              {kTagA, kTagB}, {4, 4}, 8}));
       t.events.push_back(op({StoreEvent::Kind::kErase, 0, kTagA, {}, {}, 4}));
       return t;
     }},
    {"in-place combine into a shared buffer", TraceCase::Check::kAlias,
     "alias.combine-shared", 1, Severity::kError, true,
     [] {
       RunTrace t;
       t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagA, {}, {}, 8}));
       t.events.push_back(op({StoreEvent::Kind::kSplit, 0, kTagA,
                              {kTagB, kTagC}, {4, 4}, 8}));
       t.events.push_back(
           op({StoreEvent::Kind::kCombineInPlace, 0, kTagB, {}, {}, 4}));
       return t;
     }},
    {"re-insert over a live item", TraceCase::Check::kAlias,
     "alias.duplicate-item", 1, Severity::kError, true,
     [] {
       RunTrace t;
       t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagA, {}, {}, 4}));
       t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagA, {}, {}, 4}));
       return t;
     }},
    {"transfer of an absent tag", TraceCase::Check::kAlias,
     "alias.missing-item", 1, Severity::kError, true,
     [] {
       RunTrace t;
       Schedule s;
       s.rounds.push_back(Round{{Transfer{0, 1, {kTagA}, false, false}}});
       add_schedule(t, std::move(s));
       return t;
     }},
    {"split parts leaked at end of run", TraceCase::Check::kAlias,
     "alias.part-leak", 2, Severity::kWarning, false,
     [] {
       RunTrace t;
       t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagA, {}, {}, 8}));
       t.events.push_back(op({StoreEvent::Kind::kSplit, 0, kTagA,
                              {kTagA | kPartBit, kTagA | (kPartBit << 1)},
                              {4, 4}, 8}));
       return t;
     }},
    {"unsynchronized writes through shared views", TraceCase::Check::kRace,
     "race.conflicting-access", 1, Severity::kError, true,
     [] {
       // One buffer is delivered (not moved) to nodes 1 and 2; both then
       // accumulate into their view.  The only happens-before edges run
       // 0 -> 1 and 0 -> 2, so the two writes are unordered: a race.
       RunTrace t;
       t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagA, {}, {}, 8}));
       Schedule s;
       s.rounds.push_back(Round{{Transfer{0, 1, {kTagA}, false, false},
                                 Transfer{0, 2, {kTagA}, false, false}}});
       add_schedule(t, std::move(s));
       t.events.push_back(
           op({StoreEvent::Kind::kCombineInPlace, 1, kTagA, {}, {}, 8}));
       t.events.push_back(
           op({StoreEvent::Kind::kCombineInPlace, 2, kTagA, {}, {}, 8}));
       return t;
     }},
    {"one-port double send", TraceCase::Check::kSchedule, "port.double-send",
     1, Severity::kError, true,
     [] {
       RunTrace t;
       add_schedule(t, one_round({xfer(0, 1, kTagA), xfer(0, 2, kTagB)}));
       return t;
     }},
};

TEST(AnalysisTrace, NegativeTraceTable) {
  for (const TraceCase& c : kNegativeTraces) {
    SCOPED_TRACE(c.name);
    const RunTrace t = c.build();
    DiagnosticList dl;
    if (c.check == TraceCase::Check::kSchedule) {
      dl = analysis::analyze_schedule(t.schedules[0], Hypercube(2),
                                      PortModel::kOnePort);
    } else {
      analysis::TraceInput in;
      in.trace = &t;
      in.cube = Hypercube(2);
      in.port = PortModel::kOnePort;
      const auto pass = c.check == TraceCase::Check::kRace
                            ? analysis::make_happens_before_pass()
                            : analysis::make_alias_lifetime_pass();
      pass->run(in, dl);
    }
    ASSERT_EQ(dl.size(), c.count) << dl.to_string();
    for (const Diagnostic& d : dl.diags()) {
      EXPECT_EQ(d.code, c.code);
      EXPECT_EQ(d.severity, c.severity);
      EXPECT_EQ(d.round != analysis::kNoLoc, c.located) << d.message;
    }
  }
}

// A fabricated race must vanish once a transfer edge orders the writers.
TEST(AnalysisTrace, DeliveryEdgeOrdersTheWriters) {
  RunTrace t;
  t.events.push_back(op({StoreEvent::Kind::kPut, 0, kTagA, {}, {}, 8}));
  Schedule s;
  s.rounds.push_back(Round{{Transfer{0, 1, {kTagA}, false, false},
                            Transfer{0, 2, {kTagA}, false, false}}});
  add_schedule(t, std::move(s));
  t.events.push_back(
      op({StoreEvent::Kind::kCombineInPlace, 1, kTagA, {}, {}, 8}));
  // Synchronize 1 -> 2 before node 2 writes: node 2 must observe node 1's
  // write, so the pair is ordered and no race remains.
  t.events.push_back(op({StoreEvent::Kind::kPut, 1, kTagB, {}, {}, 1}));
  Schedule sync;
  sync.rounds.push_back(Round{{Transfer{1, 3, {kTagB}, false, true}}});
  sync.rounds.push_back(Round{{Transfer{3, 2, {kTagB}, false, true}}});
  add_schedule(t, std::move(sync));
  t.events.push_back(
      op({StoreEvent::Kind::kCombineInPlace, 2, kTagA, {}, {}, 8}));
  analysis::TraceInput in;
  in.trace = &t;
  in.cube = Hypercube(2);
  in.port = PortModel::kOnePort;
  DiagnosticList dl;
  analysis::make_happens_before_pass()->run(in, dl);
  EXPECT_TRUE(dl.empty()) << dl.to_string();
}

// Recorded real runs must verify clean under both trace passes, and the
// abstract interpretation must predict the measured data-plane counters
// exactly, under both copy policies.
TEST(AnalysisTrace, LegalRunVerifiesCleanAndPredictsPlaneStats) {
  const std::size_t n = 16;
  const Matrix a = random_matrix(n, n, 5);
  const Matrix b = random_matrix(n, n, 6);
  for (const CopyPolicy policy :
       {CopyPolicy::kZeroCopy, CopyPolicy::kDeepCopy}) {
    SCOPED_TRACE(policy == CopyPolicy::kZeroCopy ? "zero-copy" : "deep-copy");
    const auto alg = algo::make_algorithm(algo::AlgoId::kCannon);
    Machine m(Hypercube::with_nodes(16), PortModel::kOnePort, CostParams{});
    m.store().set_copy_policy(policy);
    analysis::TraceRecorder rec(m);
    (void)alg->run(a, b, m);
    const RunTrace trace = rec.take();
    EXPECT_FALSE(trace.events.empty());
    EXPECT_FALSE(trace.schedules.empty());
    analysis::TraceInput in;
    in.trace = &trace;
    in.cube = m.cube();
    in.port = m.port();
    DiagnosticList dl;
    analysis::make_alias_lifetime_pass()->run(in, dl);
    analysis::make_happens_before_pass()->run(in, dl);
    analysis::cross_validate_plane(trace, m.store().plane_stats(), dl);
    EXPECT_TRUE(dl.empty()) << dl.to_string();
  }
}

// ---- symbolic all-p certification -----------------------------------------

TEST(AnalysisSymbolic, ClassifiesRoundSchemas) {
  using analysis::RoundSchema;
  using analysis::classify_round;
  // Every transfer crosses dimension 0, sources distinct.
  EXPECT_EQ(classify_round(Round{{xfer(0, 1, kTagA), xfer(2, 3, kTagB)}}),
            RoundSchema::kUniformDim);
  // Mixed dimensions but a permutation of endpoints.
  EXPECT_EQ(classify_round(Round{{xfer(0, 1, kTagA), xfer(2, 6, kTagB)}}),
            RoundSchema::kPermutation);
  // Node 0 drives two of its dimensions at once: multi-port only.
  EXPECT_EQ(classify_round(Round{{xfer(0, 1, kTagA), xfer(0, 2, kTagB)}}),
            RoundSchema::kDimPartitioned);
  // Same link twice, and a non-link hop: no lemma applies.
  EXPECT_EQ(classify_round(Round{{xfer(0, 1, kTagA), xfer(0, 1, kTagB)}}),
            RoundSchema::kIrregular);
  EXPECT_EQ(classify_round(Round{{xfer(0, 3, kTagA)}}),
            RoundSchema::kIrregular);
  EXPECT_EQ(classify_round(Round{}), RoundSchema::kUniformDim);
}

TEST(AnalysisSymbolic, CertifiesLemmaCoveredRunsOnly) {
  const std::vector<Schedule> uniform3 = {one_round({xfer(0, 1, kTagA)})};
  const std::vector<Schedule> uniform4 = {one_round({xfer(0, 1, kTagA)}),
                                          one_round({xfer(2, 3, kTagB)})};
  const analysis::SampledRun uruns[] = {{3, &uniform3}, {4, &uniform4}};
  const auto ucert = analysis::certify_dimension_schema(
      "uniform", PortModel::kOnePort, uruns);
  EXPECT_TRUE(ucert.certified_all_p);
  EXPECT_EQ(ucert.rounds_total, 3u);
  EXPECT_EQ(ucert.uniform_rounds, 3u);
  EXPECT_NE(ucert.to_string().find("CERTIFIED"), std::string::npos);

  // Lemma D rounds certify multi-port, never one-port.
  const std::vector<Schedule> dimpart = {
      one_round({xfer(0, 1, kTagA), xfer(0, 2, kTagB)})};
  const analysis::SampledRun druns[] = {{3, &dimpart}};
  EXPECT_FALSE(analysis::certify_dimension_schema("dp", PortModel::kOnePort,
                                                  druns)
                   .certified_all_p);
  EXPECT_TRUE(analysis::certify_dimension_schema("dp", PortModel::kMultiPort,
                                                 druns)
                  .certified_all_p);

  // An irregular round forfeits the certificate under either model.
  const std::vector<Schedule> irregular = {one_round({xfer(0, 3, kTagA)})};
  const analysis::SampledRun iruns[] = {{3, &irregular}};
  const auto icert = analysis::certify_dimension_schema(
      "irr", PortModel::kMultiPort, iruns);
  EXPECT_FALSE(icert.certified_all_p);
  EXPECT_EQ(icert.irregular_rounds, 1u);

  // No sampled rounds at all proves nothing.
  EXPECT_FALSE(analysis::certify_dimension_schema("empty",
                                                  PortModel::kOnePort, {})
                   .certified_all_p);
}

}  // namespace
}  // namespace hcmm
