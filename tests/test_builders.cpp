// Structural tests of the raw schedule builders: tree shapes, round
// legality under both port models, edge-disjointness of the rotated trees
// (the property that buys the multi-port bandwidth of Table 1), and the
// composition operators seq/par.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hcmm/coll/builders.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm {
namespace {

using coll::identity_order;
using coll::rotated_order;

TEST(SbtBcast, TreeStructure) {
  const Subcube sc(0, 0b111);
  const Tag tags[] = {make_tag(1)};
  const Schedule s = coll::sbt_bcast(sc, 0, identity_order(3), tags);
  ASSERT_EQ(s.round_count(), 3u);
  EXPECT_EQ(s.rounds[0].transfers.size(), 1u);
  EXPECT_EQ(s.rounds[1].transfers.size(), 2u);
  EXPECT_EQ(s.rounds[2].transfers.size(), 4u);
  // Every node is reached exactly once.
  std::set<NodeId> reached{0};
  for (const auto& round : s.rounds) {
    for (const auto& t : round.transfers) {
      EXPECT_TRUE(reached.contains(t.src)) << "sender must already be covered";
      EXPECT_TRUE(reached.insert(t.dst).second) << "node reached twice";
      EXPECT_FALSE(t.move_src) << "broadcast keeps the source copy";
      EXPECT_FALSE(t.combine);
    }
  }
  EXPECT_EQ(reached.size(), 8u);
}

TEST(SbtBcast, NonZeroRootRelabelsTree) {
  const Subcube sc(0, 0b1111);
  const Tag tags[] = {make_tag(1)};
  const Schedule s = coll::sbt_bcast(sc, 9, identity_order(4), tags);
  EXPECT_EQ(s.rounds[0].transfers[0].src, sc.node_at(9));
}

TEST(SbtReduce, MirrorsBcast) {
  const Subcube sc(0, 0b111);
  const Tag tags[] = {make_tag(1)};
  const Schedule b = coll::sbt_bcast(sc, 0, identity_order(3), tags);
  const Schedule r = coll::sbt_reduce(sc, 0, identity_order(3), tags);
  ASSERT_EQ(b.round_count(), r.round_count());
  // Reduce round i is broadcast round (d-1-i) with src/dst swapped.
  for (std::size_t i = 0; i < r.round_count(); ++i) {
    const auto& br = b.rounds[b.round_count() - 1 - i].transfers;
    const auto& rr = r.rounds[i].transfers;
    ASSERT_EQ(br.size(), rr.size());
    std::set<std::pair<NodeId, NodeId>> bset;
    for (const auto& t : br) bset.insert({t.dst, t.src});
    for (const auto& t : rr) {
      EXPECT_TRUE(bset.contains({t.src, t.dst}));
      EXPECT_TRUE(t.combine);
      EXPECT_TRUE(t.move_src);
    }
  }
}

TEST(RotatedTrees, EdgeDisjointPerRound) {
  // The log N trees of the multi-port broadcast must use distinct directed
  // links within every round — that is what makes them concurrent.
  for (const std::uint32_t d : {2u, 3u, 4u, 5u}) {
    const Subcube sc(0, (1u << d) - 1);
    std::vector<Schedule> trees;
    for (std::uint32_t j = 0; j < d; ++j) {
      const Tag tags[] = {make_tag(1, static_cast<std::uint16_t>(j))};
      trees.push_back(coll::sbt_bcast(sc, 0, rotated_order(d, j), tags));
    }
    for (std::uint32_t r = 0; r < d; ++r) {
      std::set<std::pair<NodeId, NodeId>> links;
      for (std::uint32_t j = 0; j < d; ++j) {
        for (const auto& t : trees[j].rounds[r].transfers) {
          EXPECT_TRUE(links.insert({t.src, t.dst}).second)
              << "d=" << d << " round " << r << " link reused";
        }
      }
    }
  }
}

TEST(Allgather, ExchangePairsEveryRound) {
  const Subcube sc(0, 0b1111);
  std::vector<std::vector<Tag>> tags(16);
  for (std::uint32_t r = 0; r < 16; ++r) {
    tags[r] = {make_tag(1, static_cast<std::uint16_t>(r))};
  }
  const Schedule s = coll::rd_allgather(sc, identity_order(4), tags);
  ASSERT_EQ(s.round_count(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    const auto& round = s.rounds[r].transfers;
    EXPECT_EQ(round.size(), 16u) << "every node sends every round";
    std::map<NodeId, std::size_t> sent;
    for (const auto& t : round) {
      EXPECT_EQ(t.tags.size(), 1u << r) << "accumulated set doubles";
      ++sent[t.src];
    }
    for (const auto& [node, cnt] : sent) EXPECT_EQ(cnt, 1u);
  }
}

TEST(Scatter, HalvesBundlesPerRound) {
  const Subcube sc(0, 0b111);
  std::vector<std::vector<Tag>> tags(8);
  for (std::uint32_t r = 0; r < 8; ++r) {
    tags[r] = {make_tag(1, static_cast<std::uint16_t>(r))};
  }
  const Schedule s = coll::rh_scatter(sc, 0, identity_order(3), tags);
  ASSERT_EQ(s.round_count(), 3u);
  EXPECT_EQ(s.rounds[0].transfers[0].tags.size(), 4u);
  EXPECT_EQ(s.rounds[1].transfers[0].tags.size(), 2u);
  EXPECT_EQ(s.rounds[2].transfers[0].tags.size(), 1u);
  for (const auto& round : s.rounds) {
    for (const auto& t : round.transfers) EXPECT_TRUE(t.move_src);
  }
}

TEST(Aapc, ItemsCrossOnlyWhenBitsDiffer) {
  const Subcube sc(0, 0b11);
  auto tag_fn = [](std::uint32_t s, std::uint32_t d) -> std::vector<Tag> {
    if (s == d) return {};
    return {make_tag(1, static_cast<std::uint16_t>(s),
                     static_cast<std::uint16_t>(d))};
  };
  const Schedule s = coll::aapc(sc, identity_order(2), tag_fn);
  ASSERT_EQ(s.round_count(), 2u);
  // Round 0 routes across dim 0: every node relays the two items whose
  // destination differs in bit 0.
  for (const auto& t : s.rounds[0].transfers) {
    EXPECT_EQ(t.tags.size(), 2u);
    EXPECT_EQ(popcount32(t.src ^ t.dst), 1u);
  }
}

TEST(Compose, SeqConcatenatesParZips) {
  Schedule a;
  a.rounds.resize(2);
  a.rounds[0].transfers.push_back({.src = 0, .dst = 1, .tags = {make_tag(1)}});
  a.rounds[1].transfers.push_back({.src = 1, .dst = 0, .tags = {make_tag(1)}});
  Schedule b;
  b.rounds.resize(1);
  b.rounds[0].transfers.push_back({.src = 2, .dst = 3, .tags = {make_tag(2)}});

  const Schedule parts[] = {a, b};
  const Schedule s = seq(parts);
  EXPECT_EQ(s.round_count(), 3u);
  EXPECT_EQ(s.transfer_count(), 3u);

  const Schedule z = par(parts);
  EXPECT_EQ(z.round_count(), 2u);
  EXPECT_EQ(z.rounds[0].transfers.size(), 2u);
  EXPECT_EQ(z.rounds[1].transfers.size(), 1u);
}

TEST(Builders, SingleNodeSubcubeYieldsEmptySchedules) {
  const Subcube sc(5, 0);
  const Tag tags[] = {make_tag(1)};
  EXPECT_TRUE(coll::sbt_bcast(sc, 0, identity_order(0), tags).empty());
  EXPECT_TRUE(coll::sbt_reduce(sc, 0, identity_order(0), tags).empty());
}

}  // namespace
}  // namespace hcmm
