// Collective-communication tests: functional correctness of every
// collective on both port models, and *exact* agreement of measured costs
// with Table 1 of the paper (message length chosen divisible by log N so
// the multi-port chunking is exact).
//
//   collective                 a (t_s)   b one-port     b multi-port
//   one-to-all broadcast       log N     M log N        M
//   one-to-all personalized    log N     (N-1)M         (N-1)M / log N
//   all-to-all broadcast       log N     (N-1)M         (N-1)M / log N
//   all-to-all personalized    log N     N M log N / 2  N M / 2
//   (reductions are the inverses with identical costs)

#include <gtest/gtest.h>

#include <vector>

#include "hcmm/coll/builders.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/coll/ring.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm {
namespace {

using coll::PreparedColl;

constexpr double kTs = 1000.0;
constexpr double kTw = 1.0;

struct CollParam {
  PortModel port;
  std::uint32_t dim;  // subcube dimension d (N = 2^d)
};

std::string param_name(const testing::TestParamInfo<CollParam>& info) {
  return std::string(info.param.port == PortModel::kOnePort ? "oneport"
                                                            : "multiport") +
         "_d" + std::to_string(info.param.dim);
}

class CollTest : public testing::TestWithParam<CollParam> {
 protected:
  CollTest()
      : machine_(Hypercube(GetParam().dim + 2),  // embed in a larger cube
                 GetParam().port, CostParams{kTs, kTw, 1.0}),
        // Use free dims {2 .. 2+d-1} so the subcube is a strict subset of
        // the machine — collectives must work inside chains, not just on
        // whole hypercubes.
        sc_(0b01, ((1u << GetParam().dim) - 1u) << 2) {}

  [[nodiscard]] std::uint32_t d() const { return GetParam().dim; }
  [[nodiscard]] std::uint32_t n() const { return 1u << GetParam().dim; }
  /// Message length divisible by d (and by N for personalized payloads).
  [[nodiscard]] std::size_t msg_words() const { return 60u * n(); }

  [[nodiscard]] bool is_multi() const {
    return GetParam().port == PortModel::kMultiPort && d() >= 2;
  }
  [[nodiscard]] double b_scale() const {
    return is_multi() ? static_cast<double>(d()) : 1.0;
  }

  std::vector<double> value_vec(std::size_t words, double v) {
    return std::vector<double>(words, v);
  }

  Machine machine_;
  Subcube sc_;
};

TEST_P(CollTest, BcastDeliversToAllMembers) {
  const Tag tag = make_tag(1);
  const NodeId root = sc_.node_at(1 % n());
  machine_.store().put(root, tag, value_vec(msg_words(), 3.5));
  machine_.reset_stats();
  coll::op_bcast(machine_, sc_, root, tag);
  for (std::uint32_t r = 0; r < n(); ++r) {
    ASSERT_TRUE(machine_.store().has(sc_.node_at(r), tag)) << "rank " << r;
    const auto& data = *machine_.store().get(sc_.node_at(r), tag);
    ASSERT_EQ(data.size(), msg_words());
    EXPECT_EQ(data.front(), 3.5);
    EXPECT_EQ(data.back(), 3.5);
  }
}

TEST_P(CollTest, BcastCostMatchesTable1) {
  if (d() == 0) GTEST_SKIP();
  const Tag tag = make_tag(1);
  const NodeId root = sc_.node_at(0);
  machine_.store().put(root, tag, value_vec(msg_words(), 1.0));
  machine_.reset_stats();
  coll::op_bcast(machine_, sc_, root, tag);
  const auto t = machine_.report().totals();
  EXPECT_EQ(t.rounds, d());
  const double m = static_cast<double>(msg_words());
  EXPECT_DOUBLE_EQ(t.word_cost, m * static_cast<double>(d()) / b_scale());
}

TEST_P(CollTest, ReduceSumsIntoRoot) {
  const Tag tag = make_tag(2);
  const NodeId root = sc_.node_at(n() - 1);
  for (std::uint32_t r = 0; r < n(); ++r) {
    machine_.store().put(sc_.node_at(r), tag,
                         value_vec(msg_words(), static_cast<double>(r + 1)));
  }
  machine_.reset_stats();
  coll::op_reduce(machine_, sc_, root, tag);
  const double expect = static_cast<double>(n()) * (n() + 1) / 2.0;
  const auto& data = *machine_.store().get(root, tag);
  ASSERT_EQ(data.size(), msg_words());
  EXPECT_DOUBLE_EQ(data.front(), expect);
  EXPECT_DOUBLE_EQ(data.back(), expect);
  for (std::uint32_t r = 0; r < n(); ++r) {
    if (sc_.node_at(r) != root) {
      EXPECT_FALSE(machine_.store().has(sc_.node_at(r), tag));
    }
  }
}

TEST_P(CollTest, ReduceCostEqualsBcastCost) {
  if (d() == 0) GTEST_SKIP();
  const Tag tag = make_tag(2);
  for (std::uint32_t r = 0; r < n(); ++r) {
    machine_.store().put(sc_.node_at(r), tag, value_vec(msg_words(), 1.0));
  }
  machine_.reset_stats();
  coll::op_reduce(machine_, sc_, sc_.node_at(0), tag);
  const auto t = machine_.report().totals();
  EXPECT_EQ(t.rounds, d());
  EXPECT_DOUBLE_EQ(t.word_cost,
                   static_cast<double>(msg_words()) * d() / b_scale());
}

TEST_P(CollTest, ScatterDeliversPersonalizedItems) {
  const NodeId root = sc_.node_at(0);
  std::vector<Tag> tags(n());
  const std::size_t item = msg_words() / n();
  for (std::uint32_t r = 0; r < n(); ++r) {
    tags[r] = make_tag(3, static_cast<std::uint16_t>(r));
    machine_.store().put(root, tags[r], value_vec(item, 100.0 + r));
  }
  machine_.reset_stats();
  coll::op_scatter(machine_, sc_, root, tags);
  for (std::uint32_t r = 0; r < n(); ++r) {
    ASSERT_TRUE(machine_.store().has(sc_.node_at(r), tags[r]));
    const auto& data = *machine_.store().get(sc_.node_at(r), tags[r]);
    ASSERT_EQ(data.size(), item);
    EXPECT_EQ(data.front(), 100.0 + r);
    if (r != 0) {
      EXPECT_FALSE(machine_.store().has(root, tags[r]));
    }
  }
}

TEST_P(CollTest, ScatterCostMatchesTable1) {
  if (d() == 0) GTEST_SKIP();
  const NodeId root = sc_.node_at(0);
  std::vector<Tag> tags(n());
  const std::size_t item = msg_words();  // M per destination
  for (std::uint32_t r = 0; r < n(); ++r) {
    tags[r] = make_tag(3, static_cast<std::uint16_t>(r));
    machine_.store().put(root, tags[r], value_vec(item, 1.0));
  }
  machine_.reset_stats();
  coll::op_scatter(machine_, sc_, root, tags);
  const auto t = machine_.report().totals();
  EXPECT_EQ(t.rounds, d());
  EXPECT_DOUBLE_EQ(t.word_cost,
                   static_cast<double>((n() - 1) * item) / b_scale());
}

TEST_P(CollTest, GatherCollectsAllItems) {
  const NodeId root = sc_.node_at(n() / 2);
  std::vector<Tag> tags(n());
  const std::size_t item = 6 * n();
  for (std::uint32_t r = 0; r < n(); ++r) {
    tags[r] = make_tag(4, static_cast<std::uint16_t>(r));
    machine_.store().put(sc_.node_at(r), tags[r], value_vec(item, 7.0 + r));
  }
  machine_.reset_stats();
  coll::op_gather(machine_, sc_, root, tags);
  for (std::uint32_t r = 0; r < n(); ++r) {
    ASSERT_TRUE(machine_.store().has(root, tags[r])) << "rank " << r;
    EXPECT_EQ((*machine_.store().get(root, tags[r])).front(), 7.0 + r);
  }
}

TEST_P(CollTest, GatherCostMatchesScatter) {
  if (d() == 0) GTEST_SKIP();
  const NodeId root = sc_.node_at(0);
  std::vector<Tag> tags(n());
  const std::size_t item = msg_words();
  for (std::uint32_t r = 0; r < n(); ++r) {
    tags[r] = make_tag(4, static_cast<std::uint16_t>(r));
    machine_.store().put(sc_.node_at(r), tags[r], value_vec(item, 1.0));
  }
  machine_.reset_stats();
  coll::op_gather(machine_, sc_, root, tags);
  const auto t = machine_.report().totals();
  EXPECT_EQ(t.rounds, d());
  EXPECT_DOUBLE_EQ(t.word_cost,
                   static_cast<double>((n() - 1) * item) / b_scale());
}

TEST_P(CollTest, AllgatherReplicatesEverything) {
  std::vector<Tag> tags(n());
  const std::size_t item = msg_words();
  for (std::uint32_t r = 0; r < n(); ++r) {
    tags[r] = make_tag(5, static_cast<std::uint16_t>(r));
    machine_.store().put(sc_.node_at(r), tags[r], value_vec(item, 1.0 + r));
  }
  machine_.reset_stats();
  coll::op_allgather(machine_, sc_, tags);
  for (std::uint32_t holder = 0; holder < n(); ++holder) {
    for (std::uint32_t r = 0; r < n(); ++r) {
      ASSERT_TRUE(machine_.store().has(sc_.node_at(holder), tags[r]))
          << "holder " << holder << " rank " << r;
      const auto& data = *machine_.store().get(sc_.node_at(holder), tags[r]);
      ASSERT_EQ(data.size(), item);
      EXPECT_EQ(data.front(), 1.0 + r);
      EXPECT_EQ(data.back(), 1.0 + r);
    }
  }
}

TEST_P(CollTest, AllgatherCostMatchesTable1) {
  if (d() == 0) GTEST_SKIP();
  std::vector<Tag> tags(n());
  const std::size_t item = msg_words();
  for (std::uint32_t r = 0; r < n(); ++r) {
    tags[r] = make_tag(5, static_cast<std::uint16_t>(r));
    machine_.store().put(sc_.node_at(r), tags[r], value_vec(item, 1.0));
  }
  machine_.reset_stats();
  coll::op_allgather(machine_, sc_, tags);
  const auto t = machine_.report().totals();
  EXPECT_EQ(t.rounds, d());
  EXPECT_DOUBLE_EQ(t.word_cost,
                   static_cast<double>((n() - 1) * item) / b_scale());
}

TEST_P(CollTest, ReduceScatterCombinesAndDistributes) {
  std::vector<Tag> tags(n());
  const std::size_t item = msg_words() / n();
  for (std::uint32_t r = 0; r < n(); ++r) {
    tags[r] = make_tag(6, static_cast<std::uint16_t>(r));
  }
  // Node at rank h contributes value (h+1) to every piece.
  for (std::uint32_t h = 0; h < n(); ++h) {
    for (std::uint32_t r = 0; r < n(); ++r) {
      machine_.store().put(sc_.node_at(h), tags[r],
                           value_vec(item, static_cast<double>(h + 1)));
    }
  }
  machine_.reset_stats();
  coll::op_reduce_scatter(machine_, sc_, tags);
  const double expect = static_cast<double>(n()) * (n() + 1) / 2.0;
  for (std::uint32_t r = 0; r < n(); ++r) {
    ASSERT_TRUE(machine_.store().has(sc_.node_at(r), tags[r]));
    const auto& data = *machine_.store().get(sc_.node_at(r), tags[r]);
    ASSERT_EQ(data.size(), item);
    EXPECT_DOUBLE_EQ(data.front(), expect);
    EXPECT_DOUBLE_EQ(data.back(), expect);
    // Other pieces are gone from this node.
    for (std::uint32_t other = 0; other < n(); ++other) {
      if (other != r) {
        EXPECT_FALSE(machine_.store().has(sc_.node_at(r), tags[other]));
      }
    }
  }
}

TEST_P(CollTest, ReduceScatterCostMatchesAllgather) {
  if (d() == 0) GTEST_SKIP();
  std::vector<Tag> tags(n());
  const std::size_t item = msg_words();
  for (std::uint32_t r = 0; r < n(); ++r) {
    tags[r] = make_tag(6, static_cast<std::uint16_t>(r));
  }
  for (std::uint32_t h = 0; h < n(); ++h) {
    for (std::uint32_t r = 0; r < n(); ++r) {
      machine_.store().put(sc_.node_at(h), tags[r], value_vec(item, 1.0));
    }
  }
  machine_.reset_stats();
  coll::op_reduce_scatter(machine_, sc_, tags);
  const auto t = machine_.report().totals();
  EXPECT_EQ(t.rounds, d());
  EXPECT_DOUBLE_EQ(t.word_cost,
                   static_cast<double>((n() - 1) * item) / b_scale());
}

TEST_P(CollTest, AlltoallRoutesEveryPair) {
  const std::size_t item = msg_words() / n();
  std::vector<Tag> flat(static_cast<std::size_t>(n()) * n(), 0);
  for (std::uint32_t s = 0; s < n(); ++s) {
    for (std::uint32_t dst = 0; dst < n(); ++dst) {
      const Tag t = make_tag(7, static_cast<std::uint16_t>(s),
                             static_cast<std::uint16_t>(dst));
      flat[static_cast<std::size_t>(s) * n() + dst] = t;
      machine_.store().put(sc_.node_at(s), t,
                           value_vec(item, static_cast<double>(s * 100 + dst)));
    }
  }
  machine_.reset_stats();
  coll::op_alltoall(machine_, sc_, flat);
  for (std::uint32_t s = 0; s < n(); ++s) {
    for (std::uint32_t dst = 0; dst < n(); ++dst) {
      const Tag t = flat[static_cast<std::size_t>(s) * n() + dst];
      ASSERT_TRUE(machine_.store().has(sc_.node_at(dst), t))
          << "pair " << s << "->" << dst;
      const auto& data = *machine_.store().get(sc_.node_at(dst), t);
      ASSERT_EQ(data.size(), item);
      EXPECT_EQ(data.front(), s * 100 + dst);
      if (dst != s) {
        EXPECT_FALSE(machine_.store().has(sc_.node_at(s), t));
      }
    }
  }
}

TEST_P(CollTest, AlltoallCostMatchesTable1) {
  if (d() == 0) GTEST_SKIP();
  const std::size_t item = msg_words();  // M per (src,dst) pair
  std::vector<Tag> flat(static_cast<std::size_t>(n()) * n(), 0);
  for (std::uint32_t s = 0; s < n(); ++s) {
    for (std::uint32_t dst = 0; dst < n(); ++dst) {
      const Tag t = make_tag(7, static_cast<std::uint16_t>(s),
                             static_cast<std::uint16_t>(dst));
      flat[static_cast<std::size_t>(s) * n() + dst] = t;
      machine_.store().put(sc_.node_at(s), t, value_vec(item, 1.0));
    }
  }
  machine_.reset_stats();
  coll::op_alltoall(machine_, sc_, flat);
  const auto t = machine_.report().totals();
  EXPECT_EQ(t.rounds, d());
  // One-port: d rounds of N*M/2 each; multi-port divides by d.
  EXPECT_DOUBLE_EQ(t.word_cost, static_cast<double>(n()) *
                                    static_cast<double>(item) *
                                    static_cast<double>(d()) / 2.0 /
                                    b_scale());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollTest,
    testing::Values(CollParam{PortModel::kOnePort, 1},
                    CollParam{PortModel::kOnePort, 2},
                    CollParam{PortModel::kOnePort, 3},
                    CollParam{PortModel::kOnePort, 4},
                    CollParam{PortModel::kOnePort, 5},
                    CollParam{PortModel::kMultiPort, 1},
                    CollParam{PortModel::kMultiPort, 2},
                    CollParam{PortModel::kMultiPort, 3},
                    CollParam{PortModel::kMultiPort, 4},
                    CollParam{PortModel::kMultiPort, 5}),
    param_name);

// ---- non-parameterized collective tests ----

TEST(CollOverlap, TwoBcastsOnDisjointChainsShareRounds) {
  // 3DD phase 2 shape: A along an x-chain, B along a z-chain, multi-port.
  const Grid3D grid(64);
  Machine m(grid.cube(), PortModel::kMultiPort, {kTs, kTw, 1.0});
  const Tag ta = make_tag(1);
  const Tag tb = make_tag(2);
  const std::size_t words = 8;
  const Subcube xc = grid.x_chain(1, 2);
  const Subcube zc = grid.z_chain(3, 1);
  const NodeId ra = grid.node(0, 1, 2);
  const NodeId rb = grid.node(3, 1, 0);
  m.store().put(ra, ta, std::vector<double>(words, 1.0));
  m.store().put(rb, tb, std::vector<double>(words, 2.0));
  m.reset_stats();
  PreparedColl colls[] = {coll::prep_bcast(m, xc, ra, ta),
                          coll::prep_bcast(m, zc, rb, tb)};
  coll::run_prepared(m, colls);
  const auto t = m.report().totals();
  EXPECT_EQ(t.rounds, grid.chain_dim()) << "overlap must not add start-ups";
  for (std::uint32_t i = 0; i < grid.q(); ++i) {
    EXPECT_TRUE(m.store().has(grid.node(i, 1, 2), ta));
    EXPECT_TRUE(m.store().has(grid.node(3, 1, i), tb));
  }
}

TEST(CollOverlap, SequentialBcastsAddRounds) {
  const Grid3D grid(64);
  Machine m(grid.cube(), PortModel::kOnePort, {kTs, kTw, 1.0});
  const Tag ta = make_tag(1);
  const Tag tb = make_tag(2);
  const Subcube xc = grid.x_chain(1, 2);
  const Subcube zc = grid.z_chain(3, 1);
  m.store().put(grid.node(0, 1, 2), ta, std::vector<double>(8, 1.0));
  m.store().put(grid.node(3, 1, 0), tb, std::vector<double>(8, 2.0));
  m.reset_stats();
  coll::op_bcast(m, xc, grid.node(0, 1, 2), ta);
  coll::op_bcast(m, zc, grid.node(3, 1, 0), tb);
  EXPECT_EQ(m.report().totals().rounds, 2 * grid.chain_dim());
}

TEST(Ring, UnitShiftMovesEveryItemOneStep) {
  const Grid2D grid(64);
  Machine m(grid.cube(), PortModel::kOnePort, {kTs, kTw, 1.0});
  const Subcube row = grid.row_chain(3);
  std::vector<std::vector<Tag>> tags(row.size());
  for (std::uint32_t c = 0; c < grid.q(); ++c) {
    const Tag t = make_tag(8, static_cast<std::uint16_t>(c));
    tags[c] = {t};
    m.store().put(coll::ring_node(row, c), t, {static_cast<double>(c)});
  }
  m.reset_stats();
  m.run(coll::ring_shift_unit(row, tags, +1));
  const auto totals = m.report().totals();
  EXPECT_EQ(totals.rounds, 1u) << "unit shift is a single round";
  EXPECT_DOUBLE_EQ(totals.word_cost, 1.0);
  for (std::uint32_t c = 0; c < grid.q(); ++c) {
    const NodeId dst = coll::ring_node(row, (c + 1) % grid.q());
    ASSERT_TRUE(m.store().has(dst, tags[c][0]));
    EXPECT_EQ((*m.store().get(dst, tags[c][0]))[0], c);
  }
}

TEST(Ring, ShiftLeftInvertsShiftRight) {
  const Grid2D grid(16);
  Machine m(grid.cube(), PortModel::kOnePort, {kTs, kTw, 1.0});
  const Subcube col = grid.col_chain(2);
  std::vector<std::vector<Tag>> tags(col.size());
  for (std::uint32_t c = 0; c < grid.q(); ++c) {
    const Tag t = make_tag(8, static_cast<std::uint16_t>(c));
    tags[c] = {t};
    m.store().put(coll::ring_node(col, c), t, {static_cast<double>(c)});
  }
  m.run(coll::ring_shift_unit(col, tags, +1));
  // After the shift, position c+1 holds item c; build the shifted tag map.
  std::vector<std::vector<Tag>> shifted(col.size());
  for (std::uint32_t c = 0; c < grid.q(); ++c) {
    shifted[(c + 1) % grid.q()] = tags[c];
  }
  m.run(coll::ring_shift_unit(col, shifted, -1));
  for (std::uint32_t c = 0; c < grid.q(); ++c) {
    EXPECT_TRUE(m.store().has(coll::ring_node(col, c), tags[c][0]));
  }
}

TEST(Ring, PositionRoundTrip) {
  const Grid2D grid(64);
  const Subcube row = grid.row_chain(5);
  for (std::uint32_t c = 0; c < grid.q(); ++c) {
    EXPECT_EQ(coll::ring_position(row, coll::ring_node(row, c)), c);
  }
}

TEST(Bundles, BcastBundleDeliversAllItems) {
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    Machine m(Hypercube(4), port, CostParams{kTs, kTw, 1.0});
    const Subcube sc(0, 0b1111);
    std::vector<Tag> tags;
    std::vector<std::vector<double>> payloads;
    for (std::uint16_t t = 0; t < 5; ++t) {
      tags.push_back(make_tag(9, t));
      payloads.emplace_back(7 + 3 * t, 1.5 + t);
      m.store().put(3, tags.back(), payloads.back());
    }
    m.reset_stats();
    coll::run_prepared(m, coll::prep_bcast_bundle(m, sc, 3, tags));
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      for (std::size_t t = 0; t < tags.size(); ++t) {
        ASSERT_TRUE(m.store().has(sc.node_at(r), tags[t]))
            << to_string(port) << " rank " << r << " item " << t;
        EXPECT_EQ(*m.store().get(sc.node_at(r), tags[t]), payloads[t]);
      }
    }
    EXPECT_EQ(m.report().totals().rounds, 4u);
  }
}

TEST(Bundles, BcastBundleMultiPortUsesFullBandwidth) {
  // Total bundle T = 48 words over a 4-cube: rotated trees must move it in
  // 4 rounds of T/4 words per link -> b == T exactly (balanced slicing).
  Machine m(Hypercube(4), PortModel::kMultiPort, CostParams{kTs, kTw, 1.0});
  const Subcube sc(0, 0b1111);
  std::vector<Tag> tags;
  for (std::uint16_t t = 0; t < 3; ++t) {
    tags.push_back(make_tag(9, t));
    m.store().put(0, tags.back(), std::vector<double>(16, 1.0));
  }
  m.reset_stats();
  coll::run_prepared(m, coll::prep_bcast_bundle(m, sc, 0, tags));
  const auto totals = m.report().totals();
  EXPECT_EQ(totals.rounds, 4u);
  EXPECT_DOUBLE_EQ(totals.word_cost, 48.0);
}

TEST(Bundles, AllgatherBundlesReplicateEveryBundle) {
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    Machine m(Hypercube(3), port, CostParams{kTs, kTw, 1.0});
    const Subcube sc(0, 0b111);
    std::vector<std::vector<Tag>> bundles(sc.size());
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      // Uneven bundles, including an empty one (a sparse contributor).
      const std::uint32_t items = r % 3;
      for (std::uint32_t t = 0; t < items; ++t) {
        const Tag tag = make_tag(10, static_cast<std::uint16_t>(r),
                                 static_cast<std::uint16_t>(t));
        bundles[r].push_back(tag);
        m.store().put(sc.node_at(r), tag,
                      std::vector<double>(6, r + 0.25 * t));
      }
    }
    m.reset_stats();
    coll::run_prepared(m, coll::prep_allgather_bundles(m, sc, bundles));
    for (std::uint32_t holder = 0; holder < sc.size(); ++holder) {
      for (std::uint32_t r = 0; r < sc.size(); ++r) {
        for (const Tag tag : bundles[r]) {
          ASSERT_TRUE(m.store().has(sc.node_at(holder), tag))
              << to_string(port) << " holder " << holder;
          EXPECT_EQ((*m.store().get(sc.node_at(holder), tag))[0],
                    r + 0.25 * static_cast<double>((tag >> 16) & 0xFFFF));
        }
      }
    }
  }
}

TEST(Builders, RotatedOrdersAreDistinctPermutations) {
  for (std::uint32_t d = 1; d <= 5; ++d) {
    for (std::uint32_t j = 0; j < d; ++j) {
      const auto o = coll::rotated_order(d, j);
      ASSERT_EQ(o.size(), d);
      std::uint32_t seen = 0;
      for (const auto v : o) seen |= (1u << v);
      EXPECT_EQ(seen, (1u << d) - 1) << "must be a permutation";
      EXPECT_EQ(o[0], j);
    }
  }
}

TEST(Builders, BcastRejectsBadOrder) {
  const Subcube sc(0, 0b111);
  const Tag tags[] = {make_tag(1)};
  EXPECT_THROW(coll::sbt_bcast(sc, 0, {0, 1}, tags), CheckError);
  EXPECT_THROW(coll::sbt_bcast(sc, 0, {0, 1, 1}, tags), CheckError);
  EXPECT_THROW(coll::sbt_bcast(sc, 8, {0, 1, 2}, tags), CheckError);
}

}  // namespace
}  // namespace hcmm
