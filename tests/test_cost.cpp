// Cost-model tests: Table 2 closed forms against the paper's analytical
// claims (§5), and against costs *measured* by running each algorithm on
// the simulator.  Algorithms whose schedules realize the Table 2 terms
// exactly (Simple, 3DD, All_Trans, 3D All) must match to the word; the
// shift-based ones (Cannon, HJE, Berntsen, DNS) are bounded — their
// alignment/p2p phases are worst-case terms in the paper, and honest
// routing may beat them slightly via pipelining.

#include <gtest/gtest.h>

#include "hcmm/algo/api.hpp"
#include "hcmm/cost/model.hpp"
#include <cmath>
#include "hcmm/matrix/generate.hpp"

namespace hcmm {
namespace {

using algo::AlgoId;

cost::CommCost measured(AlgoId id, PortModel port, std::size_t n,
                        std::uint32_t p) {
  const auto alg = algo::make_algorithm(id);
  const Matrix a = random_matrix(n, n, 3);
  const Matrix b = random_matrix(n, n, 4);
  Machine m(Hypercube::with_nodes(p), port, CostParams{1.0, 1.0, 1.0});
  const auto result = alg->run(a, b, m);
  const auto t = result.report.totals();
  return {static_cast<double>(t.rounds), t.word_cost};
}

// ---- measured vs Table 2 ----

struct ExactCase {
  AlgoId id;
  PortModel port;
  std::size_t n;
  std::uint32_t p;
};

std::string exact_name(const testing::TestParamInfo<ExactCase>& info) {
  std::string name = algo::to_string(info.param.id);
  std::erase_if(name, [](char ch) { return ch == '(' || ch == ')'; });
  for (auto& ch : name) {
    if (ch == ' ' || ch == '-') ch = '_';
  }
  return name + (info.param.port == PortModel::kOnePort ? "_one" : "_multi") +
         "_n" + std::to_string(info.param.n) + "_p" +
         std::to_string(info.param.p);
}

class ExactTable2 : public testing::TestWithParam<ExactCase> {};

TEST_P(ExactTable2, MeasuredEqualsFormula) {
  const auto [id, port, n, p] = GetParam();
  const auto mc = measured(id, port, n, p);
  const auto fc = cost::table2(id, port, static_cast<double>(n),
                               static_cast<double>(p));
  EXPECT_DOUBLE_EQ(mc.a, fc.a) << "start-up term";
  EXPECT_DOUBLE_EQ(mc.b, fc.b) << "word term";
}

INSTANTIATE_TEST_SUITE_P(
    Exact, ExactTable2,
    testing::Values(
        // Message sizes chosen divisible by every chunking factor.
        ExactCase{AlgoId::kSimple, PortModel::kOnePort, 48, 64},
        ExactCase{AlgoId::kSimple, PortModel::kMultiPort, 48, 64},
        ExactCase{AlgoId::kDiag3D, PortModel::kOnePort, 32, 64},
        ExactCase{AlgoId::kDiag3D, PortModel::kMultiPort, 32, 64},
        ExactCase{AlgoId::kAllTrans, PortModel::kOnePort, 32, 64},
        ExactCase{AlgoId::kAllTrans, PortModel::kMultiPort, 32, 64},
        ExactCase{AlgoId::kAll3D, PortModel::kOnePort, 32, 64},
        ExactCase{AlgoId::kAll3D, PortModel::kMultiPort, 32, 64},
        // The rectangular-grid extension: one-port terms are exact against
        // our derived formula (a = 3 lg q1 + lg qz, b = 3(q1-1)m + zterm).
        ExactCase{AlgoId::kAll3DRect, PortModel::kOnePort, 32, 256},
        // 3DD x Cannon matches its derived combination formula on both
        // ports (measured at every probed config).
        ExactCase{AlgoId::kDiag3DCannon, PortModel::kOnePort, 32, 128},
        ExactCase{AlgoId::kDiag3DCannon, PortModel::kMultiPort, 32, 128},
        ExactCase{AlgoId::kDiag3DCannon, PortModel::kOnePort, 32, 256},
        ExactCase{AlgoId::kDiag3DCannon, PortModel::kMultiPort, 32, 256}),
    exact_name);

struct BoundedCase {
  AlgoId id;
  PortModel port;
  std::size_t n;
  std::uint32_t p;
  double lo;  // measured/formula time ratio bounds
  double hi;
};

std::string bounded_name(const testing::TestParamInfo<BoundedCase>& info) {
  std::string name = algo::to_string(info.param.id);
  std::erase_if(name, [](char ch) { return ch == '(' || ch == ')'; });
  for (auto& ch : name) {
    if (ch == ' ' || ch == '-') ch = '_';
  }
  return name + (info.param.port == PortModel::kOnePort ? "_one" : "_multi") +
         "_n" + std::to_string(info.param.n) + "_p" +
         std::to_string(info.param.p);
}

class BoundedTable2 : public testing::TestWithParam<BoundedCase> {};

TEST_P(BoundedTable2, MeasuredTimeWithinFormulaBand) {
  const auto [id, port, n, p, lo, hi] = GetParam();
  const CostParams cp{150.0, 3.0, 1.0};
  const auto mc = measured(id, port, n, p);
  const auto fc = cost::table2(id, port, static_cast<double>(n),
                               static_cast<double>(p));
  const double ratio = mc.time(cp) / fc.time(cp);
  EXPECT_GE(ratio, lo) << "a=" << mc.a << "/" << fc.a << " b=" << mc.b << "/"
                       << fc.b;
  EXPECT_LE(ratio, hi) << "a=" << mc.a << "/" << fc.a << " b=" << mc.b << "/"
                       << fc.b;
}

INSTANTIATE_TEST_SUITE_P(
    Bounded, BoundedTable2,
    testing::Values(
        BoundedCase{AlgoId::kCannon, PortModel::kOnePort, 32, 64, 0.5, 1.25},
        BoundedCase{AlgoId::kCannon, PortModel::kMultiPort, 32, 64, 0.5, 1.25},
        BoundedCase{AlgoId::kHJE, PortModel::kMultiPort, 32, 64, 0.5, 1.25},
        BoundedCase{AlgoId::kBerntsen, PortModel::kOnePort, 32, 64, 0.5, 1.25},
        BoundedCase{AlgoId::kBerntsen, PortModel::kMultiPort, 32, 64, 0.5, 1.25},
        BoundedCase{AlgoId::kDNS, PortModel::kOnePort, 32, 64, 0.5, 1.1},
        BoundedCase{AlgoId::kDNS, PortModel::kMultiPort, 32, 64, 0.5, 1.1},
        // Multi-port rect-grid z-allgather misses the ideal rotated-tree
        // bound by contributor clustering (documented deviation).
        BoundedCase{AlgoId::kAll3DRect, PortModel::kMultiPort, 32, 256, 0.9,
                    1.6},
        BoundedCase{AlgoId::kDNSCannon, PortModel::kOnePort, 32, 256, 0.8,
                    1.05},
        BoundedCase{AlgoId::kDNSCannon, PortModel::kMultiPort, 32, 256, 0.8,
                    1.05}),
    bounded_name);

// ---- Table 2 analytical claims of §5 ----

TEST(CostClaims, All3DDominatesOnePortContendersWhereApplicable) {
  // §5.1: 3D All beats 3DD, Berntsen and Cannon for all p >= 8 wherever it
  // applies, independent of n, t_s, t_w — check a (t_s, t_w) grid too.
  for (const double ts : {1.0, 10.0, 150.0, 1000.0}) {
    const CostParams cp{ts, 3.0, 1.0};
    for (double n = 16; n <= 4096; n *= 4) {
      for (double p = 8; p <= std::pow(n, 1.5); p *= 8) {
        const double t_all = cost::table2(AlgoId::kAll3D, PortModel::kOnePort,
                                          n, p).time(cp);
        for (const AlgoId rival :
             {AlgoId::kDiag3D, AlgoId::kBerntsen, AlgoId::kCannon}) {
          if (!cost::applicable(rival, PortModel::kOnePort, n, p)) continue;
          EXPECT_LE(t_all, cost::table2(rival, PortModel::kOnePort, n, p)
                               .time(cp) *
                               (1 + 1e-12))
              << "n=" << n << " p=" << p << " ts=" << ts << " rival "
              << algo::to_string(rival);
        }
      }
    }
  }
}

TEST(CostClaims, Diag3DDominatesDNSEverywhere) {
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    for (double n = 8; n <= 8192; n *= 2) {
      for (double p = 2; p <= n * n * n; p *= 4) {
        const CostParams cp{150.0, 3.0, 1.0};
        EXPECT_LE(cost::table2(AlgoId::kDiag3D, port, n, p).time(cp),
                  cost::table2(AlgoId::kDNS, port, n, p).time(cp) *
                      (1 + 1e-12))
            << "n=" << n << " p=" << p;
      }
    }
  }
}

TEST(CostClaims, All3DDominatesAllTrans) {
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    for (double n = 8; n <= 8192; n *= 2) {
      for (double p = 8; p <= std::pow(n, 1.5); p *= 8) {
        const CostParams cp{150.0, 3.0, 1.0};
        EXPECT_LE(cost::table2(AlgoId::kAll3D, port, n, p).time(cp),
                  cost::table2(AlgoId::kAllTrans, port, n, p).time(cp) *
                      (1 + 1e-12))
            << "n=" << n << " p=" << p;
      }
    }
  }
}

TEST(CostClaims, HjeBeatsCannonOnMultiPort) {
  // §5.2: wherever applicable, HJE improves on Cannon on multi-port nodes.
  const CostParams cp{150.0, 3.0, 1.0};
  for (double n = 64; n <= 8192; n *= 2) {
    for (double p = 16; p <= n * n; p *= 4) {
      if (!cost::applicable(AlgoId::kHJE, PortModel::kMultiPort, n, p)) {
        continue;
      }
      EXPECT_LE(cost::table2(AlgoId::kHJE, PortModel::kMultiPort, n, p)
                    .time(cp),
                cost::table2(AlgoId::kCannon, PortModel::kMultiPort, n, p)
                        .time(cp) *
                    (1 + 1e-12))
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(CostClaims, RegionWinnersMatchPaperConclusions) {
  // §6: 3D All wins for p <= n^{3/2}; 3DD wins a major part of
  // n^{3/2} < p <= n^2 at the paper's headline parameters (150, 3); and is
  // the only algorithm at n^2 < p <= n^3.
  const CostParams cp{150.0, 3.0, 1.0};
  const auto one = cost::contenders(PortModel::kOnePort);
  algo::AlgoId best{};

  ASSERT_TRUE(cost::best_algorithm(PortModel::kOnePort, 1024, 4096, cp, one,
                                   best));
  EXPECT_EQ(best, AlgoId::kAll3D) << "p well below n^{3/2}";

  ASSERT_TRUE(cost::best_algorithm(PortModel::kOnePort, 256, 32768, cp, one,
                                   best));
  EXPECT_EQ(best, AlgoId::kDiag3D) << "n^{3/2} < p <= n^2 at ts=150";

  ASSERT_TRUE(cost::best_algorithm(PortModel::kOnePort, 64, 100000, cp, one,
                                   best));
  EXPECT_EQ(best, AlgoId::kDiag3D) << "only 3DD is applicable beyond n^2";
  EXPECT_FALSE(
      cost::applicable(AlgoId::kCannon, PortModel::kOnePort, 64, 100000));
  EXPECT_FALSE(
      cost::applicable(AlgoId::kAll3D, PortModel::kOnePort, 64, 100000));
}

TEST(CostClaims, CannonEdgesOutDiag3DForTinyStartup) {
  // §5.1: for very small t_s, Cannon beats 3DD over most of
  // n^{3/2} < p <= n^2.
  const CostParams tiny{1.0, 3.0, 1.0};
  const double n = 256;
  const double p = 32768;  // n^{3/2} = 4096 < p <= n^2 = 65536
  EXPECT_LT(cost::table2(AlgoId::kCannon, PortModel::kOnePort, n, p).time(tiny),
            cost::table2(AlgoId::kDiag3D, PortModel::kOnePort, n, p).time(tiny));
}

TEST(CostModel, RegionMapRendersAndCoversRegions) {
  const CostParams cp{150.0, 3.0, 1.0};
  const auto cands = cost::contenders(PortModel::kOnePort);
  const std::string map = cost::region_map(PortModel::kOnePort, cp, cands,
                                           4.0, 14.0, 3.0, 30.0, 40, 20);
  EXPECT_NE(map.find('A'), std::string::npos) << "3D All region present";
  EXPECT_NE(map.find('D'), std::string::npos) << "3DD region present";
  EXPECT_NE(map.find('.'), std::string::npos) << "inapplicable region present";
}

TEST(CostModel, SpaceWordsMatchesTable3) {
  EXPECT_DOUBLE_EQ(cost::space_words(AlgoId::kCannon, 100, 64), 3.0e4);
  EXPECT_DOUBLE_EQ(cost::space_words(AlgoId::kSimple, 100, 64), 2.0e4 * 8);
  EXPECT_DOUBLE_EQ(cost::space_words(AlgoId::kAll3D, 100, 64), 2.0e4 * 4);
  EXPECT_DOUBLE_EQ(cost::space_words(AlgoId::kBerntsen, 100, 64),
                   2.0e4 + 1.0e4 * 4);
}

TEST(CostModel, ProcessorBounds) {
  EXPECT_TRUE(cost::within_processor_bound(AlgoId::kCannon, 10, 100));
  EXPECT_FALSE(cost::within_processor_bound(AlgoId::kCannon, 10, 101));
  EXPECT_TRUE(cost::within_processor_bound(AlgoId::kAll3D, 100, 1000));
  EXPECT_FALSE(cost::within_processor_bound(AlgoId::kAll3D, 100, 1001));
  EXPECT_TRUE(cost::within_processor_bound(AlgoId::kDiag3D, 10, 1000));
  EXPECT_FALSE(cost::within_processor_bound(AlgoId::kDiag3D, 10, 1001));
}

TEST(CostClaims, Diag3DCannonDominatesDNSCannon) {
  // The paper asserts the 3DD combination beats the DNS combination; check
  // the closed forms over a sweep and a simulated point on each port.
  const CostParams cp{150.0, 3.0, 1.0};
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    for (double n = 32; n <= 4096; n *= 2) {
      for (double p = 8; p <= n * n; p *= 2) {
        EXPECT_LE(cost::table2(AlgoId::kDiag3DCannon, port, n, p).time(cp),
                  cost::table2(AlgoId::kDNSCannon, port, n, p).time(cp) *
                      (1 + 1e-12))
            << "n=" << n << " p=" << p;
      }
    }
    const auto md = measured(AlgoId::kDiag3DCannon, port, 32, 128);
    const auto mn = measured(AlgoId::kDNSCannon, port, 32, 128);
    EXPECT_LE(md.time(cp), mn.time(cp));
  }
}

TEST(CostModel, RegionCsvDataset) {
  const CostParams cp{150.0, 3.0, 1.0};
  const auto cands = cost::contenders(PortModel::kOnePort);
  const std::string csv = cost::region_csv(PortModel::kOnePort, cp, cands,
                                           4.0, 14.0, 3.0, 33.0, 5, 4);
  EXPECT_EQ(csv.find("port,ts,tw,log2n,log2p,winner,comm_time\n"), 0u);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1 + 5 * 4);
  EXPECT_NE(csv.find("3D All"), std::string::npos);
  EXPECT_NE(csv.find("-,inf"), std::string::npos)
      << "the p > n^3 corner has no applicable algorithm";
}

TEST(CostModel, ZeroCommOnSingleNode) {
  for (const auto& id : {AlgoId::kCannon, AlgoId::kAll3D, AlgoId::kDNS}) {
    const auto c = cost::table2(id, PortModel::kOnePort, 64, 1);
    EXPECT_DOUBLE_EQ(c.a, 0.0);
    EXPECT_DOUBLE_EQ(c.b, 0.0);
  }
}

}  // namespace
}  // namespace hcmm
