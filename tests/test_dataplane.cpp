// Tests for the zero-copy data plane: payload view semantics, split/join
// aliasing, in-place combine, copy-policy equivalence (bit-identical results
// and identical charged costs under both policies), the register-blocked
// gemm microkernel's exact agreement with the naive oracle on awkward
// shapes, thread-pool exception propagation, and the parallel ABFT checksum
// recompute's determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "hcmm/abft/checksum.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/fault/plan.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/store.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/support/thread_pool.hpp"

namespace hcmm {
namespace {

const Tag kT1 = make_tag(1, 2, 3);
const Tag kT2 = make_tag(1, 2, 4);

// ---------------------------------------------------------------- payloads

TEST(Payload, SliceViewsShareOneBuffer) {
  const Payload whole = make_payload({0, 1, 2, 3, 4, 5});
  const Payload mid = whole.slice(2, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.offset(), 2u);
  EXPECT_EQ(mid[0], 2.0);
  EXPECT_EQ(mid[2], 4.0);
  EXPECT_TRUE(mid.same_buffer(whole));
  EXPECT_EQ(mid.data(), whole.data() + 2);
  EXPECT_EQ(mid.to_vector(), (std::vector<double>{2, 3, 4}));
  EXPECT_THROW((void)whole.slice(4, 3), CheckError);
}

TEST(Payload, UniqueTracksBufferReferences) {
  Payload p = make_payload({1, 2});
  EXPECT_TRUE(p.unique());
  const Payload alias = p.slice(0, 1);
  EXPECT_FALSE(p.unique());
  EXPECT_FALSE(alias.unique());
}

TEST(DataStore, SplitAliasesInsteadOfCopying) {
  DataStore st(1);
  st.put(0, kT1, {0, 1, 2, 3, 4, 5, 6, 7});
  const auto before = st.plane_stats();
  const auto parts = st.split(0, kT1, 2);
  const auto delta = st.plane_stats() - before;
  EXPECT_EQ(delta.words_copied, 0u);
  EXPECT_EQ(delta.words_aliased, 8u);
  EXPECT_EQ(delta.split_ops, 1u);
  EXPECT_TRUE(st.get(0, parts[0]).same_buffer(st.get(0, parts[1])));
}

TEST(DataStore, JoinOfOrderedSlicesRealiases) {
  DataStore st(1);
  st.put(0, kT1, {0, 1, 2, 3, 4, 5, 6});
  const auto parts = st.split(0, kT1, 3);
  const auto before = st.plane_stats();
  st.join(0, parts, kT2);
  const auto delta = st.plane_stats() - before;
  EXPECT_EQ(delta.words_copied, 0u);
  EXPECT_EQ(delta.words_aliased, 7u);
  EXPECT_EQ(delta.join_ops, 1u);
  EXPECT_EQ(*st.get(0, kT2), (std::vector<double>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(DataStore, JoinOfForeignPartsMaterializes) {
  DataStore st(1);
  st.put(0, kT1, {1, 2});
  st.put(0, kT2, {3});
  const Tag tags[] = {kT1, kT2};
  const Tag out = make_tag(1, 9, 9);
  const auto before = st.plane_stats();
  st.join(0, tags, out);
  const auto delta = st.plane_stats() - before;
  EXPECT_EQ(delta.words_copied, 3u);
  EXPECT_EQ(*st.get(0, out), (std::vector<double>{1, 2, 3}));
}

TEST(DataStore, CombineMutatesUniqueTargetInPlace) {
  DataStore st(1);
  st.put(0, kT1, {1.0, 2.0});
  const auto before = st.plane_stats();
  st.combine(0, kT1, make_payload({10.0, 20.0}));
  const auto delta = st.plane_stats() - before;
  EXPECT_EQ(delta.combines_in_place, 1u);
  EXPECT_EQ(delta.combines_copied, 0u);
  EXPECT_EQ(*st.get(0, kT1), (std::vector<double>{11.0, 22.0}));
}

TEST(DataStore, CombineCopiesWhenTargetIsShared) {
  DataStore st(2);
  st.put(0, kT1, {1.0, 2.0});
  const Payload held = st.get(0, kT1);  // second reference
  const auto before = st.plane_stats();
  st.combine(0, kT1, make_payload({10.0, 20.0}));
  const auto delta = st.plane_stats() - before;
  EXPECT_EQ(delta.combines_in_place, 0u);
  EXPECT_EQ(delta.combines_copied, 1u);
  EXPECT_EQ(*st.get(0, kT1), (std::vector<double>{11.0, 22.0}));
  // The held alias still sees the pre-combine words.
  EXPECT_EQ(*held, (std::vector<double>{1.0, 2.0}));
}

TEST(DataStore, CombineWithSelfAliasFallsBackToCopy) {
  DataStore st(1);
  st.put(0, kT1, {1.0, 2.0});
  // The addend aliases the target's own buffer: use_count >= 2 forbids the
  // in-place path, so the sums come from an untouched snapshot.
  const Payload self = st.get(0, kT1);
  st.combine(0, kT1, self);
  EXPECT_EQ(*st.get(0, kT1), (std::vector<double>{2.0, 4.0}));
}

TEST(DataStore, DeepCopyPolicyNeverAliases) {
  DataStore st(1);
  st.set_copy_policy(CopyPolicy::kDeepCopy);
  st.put(0, kT1, {0, 1, 2, 3, 4, 5});
  const auto parts = st.split(0, kT1, 2);
  st.join(0, parts, kT2);
  const auto& ps = st.plane_stats();
  EXPECT_EQ(ps.words_aliased, 0u);
  EXPECT_GT(ps.words_copied, 0u);
  EXPECT_EQ(*st.get(0, kT2), (std::vector<double>{0, 1, 2, 3, 4, 5}));
  st.combine(0, kT2, make_payload({1, 1, 1, 1, 1, 1}));
  EXPECT_EQ(st.plane_stats().combines_in_place, 0u);
  EXPECT_EQ(*st.get(0, kT2), (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

// Same simulated run under both copy policies: every charged cost and every
// product bit must agree — the data plane is host bookkeeping only.
TEST(DataPlane, PoliciesAreObservationallyEquivalent) {
  const std::size_t n = 32;
  const Matrix a = random_matrix(n, n, 11);
  const Matrix b = random_matrix(n, n, 12);
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    for (const auto id : {algo::AlgoId::kCannon, algo::AlgoId::kDiag3D,
                          algo::AlgoId::kAllTrans}) {
      const auto alg = algo::make_algorithm(id);
      if (!alg->supports(port)) continue;
      Machine mz(Hypercube::with_nodes(64), port, CostParams{150, 3, 1});
      Machine md(Hypercube::with_nodes(64), port, CostParams{150, 3, 1});
      md.store().set_copy_policy(CopyPolicy::kDeepCopy);
      const auto rz = alg->run(a, b, mz);
      const auto rd = alg->run(a, b, md);
      EXPECT_LE(max_abs_diff(rz.c, rd.c), 0.0)
          << alg->name() << ": products must be bit-identical";
      const auto tz = rz.report.totals();
      const auto td = rd.report.totals();
      EXPECT_EQ(tz.rounds, td.rounds);
      EXPECT_DOUBLE_EQ(tz.word_cost, td.word_cost);
      EXPECT_DOUBLE_EQ(tz.comm_time, td.comm_time);
      EXPECT_EQ(tz.flops, td.flops);
      EXPECT_EQ(rz.report.peak_words_total, rd.report.peak_words_total);
      // ... but the host traffic differs: zero-copy must copy strictly less.
      EXPECT_LT(tz.words_copied, td.words_copied);
      EXPECT_GT(tz.words_aliased, 0u);
      EXPECT_EQ(td.words_aliased, 0u);
    }
  }
}

// The data-plane counters must surface through the phase stats of a run.
TEST(DataPlane, CountersSurfaceInReport) {
  const std::size_t n = 16;
  const Matrix a = random_matrix(n, n, 3);
  const Matrix b = random_matrix(n, n, 4);
  const auto alg = algo::make_algorithm(algo::AlgoId::kCannon);
  Machine m(Hypercube::with_nodes(16), PortModel::kOnePort,
            CostParams{150, 3, 1});
  const auto r = alg->run(a, b, m);
  const auto totals = r.report.totals();
  EXPECT_GT(totals.words_aliased, 0u) << "gemm operands are borrowed views";
  EXPECT_GT(totals.combines_in_place, 0u) << "accumulators mutate in place";
}

// ------------------------------------------------------------ gemm kernels

Matrix accumulate_with(GemmKernel k, const Matrix& a, const Matrix& b) {
  set_gemm_kernel(k);
  Matrix c(a.rows(), b.cols());
  gemm_accumulate(a, b, c);
  set_gemm_kernel(GemmKernel::kMicro);
  return c;
}

TEST(GemmMicro, EdgeShapesMatchNaiveExactly) {
  // Shapes straddling every tail path: non-multiples of the 4x8 register
  // block and of the 256-deep k panel, single rows/columns, tiny and empty.
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 1, 1},   {1, 7, 1},    {1, 300, 9}, {3, 5, 7},
                {4, 8, 8},   {5, 9, 17},   {6, 257, 31}, {13, 64, 13},
                {16, 16, 1}, {1, 16, 16},  {33, 31, 29}, {64, 300, 12},
                {0, 5, 5},   {5, 0, 5},    {5, 5, 0}};
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s.m, s.k, 100 + s.m);
    const Matrix b = random_matrix(s.k, s.n, 200 + s.n);
    const Matrix oracle = multiply_naive(a, b);
    const Matrix micro = accumulate_with(GemmKernel::kMicro, a, b);
    const Matrix legacy = accumulate_with(GemmKernel::kLegacyTiled, a, b);
    EXPECT_LE(max_abs_diff(micro, oracle), 0.0)
        << "micro != naive at " << s.m << "x" << s.k << "x" << s.n;
    EXPECT_LE(max_abs_diff(legacy, oracle), 0.0)
        << "legacy != naive at " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmMicro, AccumulatesOntoExistingValues) {
  const Matrix a = random_matrix(9, 11, 1);
  const Matrix b = random_matrix(11, 10, 2);
  Matrix c = random_matrix(9, 10, 3);
  Matrix expect = c;
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t k = 0; k < 11; ++k) {
      for (std::size_t j = 0; j < 10; ++j) expect(i, j) += a(i, k) * b(k, j);
    }
  }
  gemm_accumulate(a, b, c);
  EXPECT_LE(max_abs_diff(c, expect), 0.0);
}

TEST(GemmMicro, ThreadedMatchesSerialExactly) {
  ThreadPool pool(4);
  const Matrix a = random_matrix(70, 129, 5);
  const Matrix b = random_matrix(129, 37, 6);
  const Matrix serial = multiply_tiled(a, b);
  const Matrix threaded = multiply_threaded(a, b, pool);
  EXPECT_LE(max_abs_diff(serial, threaded), 0.0);
  EXPECT_LE(max_abs_diff(serial, multiply_naive(a, b)), 0.0);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPoolBatch, ExceptionPropagatesOutOfRunBatch) {
  ThreadPool pool(3);
  std::vector<std::function<void()>> jobs;
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    jobs.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 5) throw std::runtime_error("job 5 failed");
    });
  }
  EXPECT_THROW(pool.run_batch(std::move(jobs)), std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::vector<std::function<void()>> more;
  std::atomic<int> after{0};
  for (int i = 0; i < 8; ++i) more.push_back([&after] { after.fetch_add(1); });
  pool.run_batch(std::move(more));
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPoolBatch, CheckErrorPropagatesIntact) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] { HCMM_CHECK(false, "deliberate"); });
  EXPECT_THROW(pool.run_batch(std::move(jobs)), CheckError);
}

// ------------------------------------------------ rollback replay alignment

// Regression: a checkpoint whose restored phases include the implicit "main"
// phase (opened by run() without any begin_phase call) must arm replay with
// the count of begin_phase() *calls* before the boundary, not the count of
// restored phases.  Counting the phases swallowed the boundary re-entry
// itself, leaving the machine stuck in replay after recovery: the
// post-boundary phase vanished from the report and its data-plane counters
// were never charged.
TEST(DataPlane, RollbackReplayAlignsImplicitMainPhase) {
  const Hypercube cube(2);
  const Tag tag = make_tag(2, 7);
  const auto stage = [&](Machine& m) {
    m.store().put(0, tag, {1, 2, 3, 4});
    m.store().put(1, tag, {10, 20, 30, 40});
    m.store().put(2, tag, {5, 6, 7, 8});
  };
  const auto combine_round = [&](NodeId src, NodeId dst) {
    Schedule s;
    s.rounds.push_back(Round{{Transfer{src, dst, {tag}, true, false}}});
    return s;
  };
  const Schedule s1 = combine_round(0, 1);  // charged into implicit "main"
  const Schedule s2 = combine_round(1, 0);  // phase p1
  const Schedule s3 = combine_round(0, 2);  // phase p2, past the boundary
  const auto drive = [&](Machine& m) {
    m.run(s1);
    m.begin_phase("p1");
    m.run(s2);
    m.begin_phase("p2");
    m.run(s3);
  };

  Machine ref(cube, PortModel::kOnePort, CostParams{});
  ref.set_checkpointing(true);
  stage(ref);
  ref.reset_stats();
  drive(ref);
  const SimReport want = ref.report();

  Machine m(cube, PortModel::kOnePort, CostParams{});
  m.set_checkpointing(true);
  stage(m);
  m.reset_stats();
  m.run(s1);
  m.begin_phase("p1");
  m.run(s2);
  m.begin_phase("p2");  // checkpoint holds {main, p1}: one begin_phase call
  // Death discovered while executing the post-boundary schedule.
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->set.kill_node(3);
  m.rollback_to_checkpoint(
      plan, {fault::FaultKind::kMidRunDeath, 3, 2, 2, 0, "test death"});
  m.reset_stats();  // restores the snapshot and arms prefix replay
  stage(m);         // the re-run rebuilds its inputs from scratch
  drive(m);         // s1/s2 replay uncharged; measurement resumes at p2
  const SimReport got = m.report();

  EXPECT_EQ(got.recoveries, 1u);
  ASSERT_EQ(got.phases.size(), want.phases.size());
  for (std::size_t i = 0; i < want.phases.size(); ++i) {
    SCOPED_TRACE(want.phases[i].name);
    EXPECT_EQ(got.phases[i].name, want.phases[i].name);
    EXPECT_EQ(got.phases[i].rounds, want.phases[i].rounds);
    EXPECT_DOUBLE_EQ(got.phases[i].word_cost, want.phases[i].word_cost);
    EXPECT_EQ(got.phases[i].combines_in_place,
              want.phases[i].combines_in_place);
    EXPECT_EQ(got.phases[i].words_copied, want.phases[i].words_copied);
    EXPECT_EQ(got.phases[i].checkpoints, want.phases[i].checkpoints);
    EXPECT_DOUBLE_EQ(got.phases[i].checkpoint_cost,
                     want.phases[i].checkpoint_cost);
  }
}

// -------------------------------------------------------- abft determinism

TEST(AbftChecksums, ParallelRecomputeIsBitIdentical) {
  const Matrix a = random_matrix(65, 65, 21);
  const Matrix b = random_matrix(65, 65, 22);
  const auto serial = abft::reference_checksums(a, b);
  ThreadPool one(1);
  ThreadPool many(5);
  const auto p1 = abft::reference_checksums(a, b, one);
  const auto pn = abft::reference_checksums(a, b, many);
  EXPECT_EQ(serial.row_sums, p1.row_sums);
  EXPECT_EQ(serial.col_sums, p1.col_sums);
  EXPECT_EQ(serial.row_sums, pn.row_sums);
  EXPECT_EQ(serial.col_sums, pn.col_sums);
}

}  // namespace
}  // namespace hcmm
