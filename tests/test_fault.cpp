// Tests for the fault-injection subsystem: FaultSet structure, deterministic
// transient outcomes, fault-aware routing, and the Machine's layered
// recovery (retry/backoff, rerouting, subcube contraction) with its
// resilience accounting — including the zero-overhead guarantee for an
// installed-but-empty plan.

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <set>
#include <string>

#include "hcmm/algo/api.hpp"
#include "hcmm/fault/fuzz.hpp"
#include "hcmm/fault/scenarios.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/sim/router.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

const Tag kTA = make_tag(1);

Schedule single(Transfer t) {
  Schedule s;
  s.rounds.push_back(Round{.transfers = {std::move(t)}});
  return s;
}

std::shared_ptr<const fault::FaultPlan> plan_of(fault::FaultPlan p) {
  return std::make_shared<const fault::FaultPlan>(std::move(p));
}

TEST(FaultSet, LinksAreUndirectedAndNodesTracked) {
  fault::FaultSet fs;
  EXPECT_TRUE(fs.empty());
  fs.fail_link(3, 7);
  EXPECT_TRUE(fs.link_failed(3, 7));
  EXPECT_TRUE(fs.link_failed(7, 3));
  EXPECT_FALSE(fs.link_failed(3, 1));
  fs.kill_node(5);
  EXPECT_TRUE(fs.node_dead(5));
  EXPECT_FALSE(fs.node_dead(4));
  EXPECT_FALSE(fs.empty());
}

TEST(FaultSet, ConnectedDetectsDisconnection) {
  const Hypercube cube(2);
  fault::FaultSet fs;
  EXPECT_TRUE(fs.connected(cube));
  fs.fail_link(0, 1);
  EXPECT_TRUE(fs.connected(cube)) << "one failed link leaves a detour";
  fs.fail_link(0, 2);
  EXPECT_FALSE(fs.connected(cube)) << "node 0 is now isolated";
}

TEST(FaultSet, HostIsLowestDimensionLivePartner) {
  const Hypercube cube(3);
  fault::FaultSet fs;
  fs.kill_node(5);
  EXPECT_EQ(fs.host(cube, 5), 4u) << "5 ^ 1 = 4 is the dim-0 partner";
  EXPECT_EQ(fs.host(cube, 4), 4u) << "live nodes host themselves";
  fs.kill_node(4);
  EXPECT_EQ(fs.host(cube, 5), 7u) << "dim-0 partner dead: next dimension";
}

TEST(FaultSet, HostlessDeathAborts) {
  const Hypercube cube(1);
  fault::FaultSet fs;
  fs.kill_node(0);
  fs.kill_node(1);
  try {
    (void)fs.host(cube, 0);
    FAIL() << "expected FaultAbort";
  } catch (const fault::FaultAbort& fa) {
    EXPECT_EQ(fa.event().kind, fault::FaultKind::kHostless);
  }
}

TEST(FaultPlan, AttemptOutcomeIsDeterministic) {
  fault::FaultPlan p;
  p.transient = fault::TransientSpec{.seed = 99,
                                     .drop_prob = 0.3,
                                     .corrupt_prob = 0.2,
                                     .spike_prob = 0.1,
                                     .spike_time = 10.0,
                                     .max_attempts = 6,
                                     .backoff_base = 1.0};
  for (std::uint64_t round = 0; round < 32; ++round) {
    for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
      EXPECT_EQ(p.attempt_outcome(round, 2, 3, attempt),
                p.attempt_outcome(round, 2, 3, attempt));
    }
  }
  fault::FaultPlan certain;
  certain.transient.drop_prob = 1.0;
  certain.transient.seed = 7;
  EXPECT_EQ(certain.attempt_outcome(0, 0, 1, 1), fault::FaultKind::kDrop);
  EXPECT_EQ(certain.attempt_outcome(9, 4, 5, 3), fault::FaultKind::kDrop);
}

TEST(FaultRouting, HealthyPathIsExactlyECube) {
  const Hypercube cube(4);
  const fault::FaultSet none;
  for (const auto& [src, dst] :
       {std::pair<NodeId, NodeId>{0, 15}, {3, 12}, {7, 8}, {5, 5}}) {
    const auto path = fault_aware_path(cube, none, src, dst);
    // The e-cube reference: correct the lowest differing bit each hop.
    std::vector<NodeId> want{src};
    NodeId cur = src;
    while (cur != dst) {
      cur = flip_bit(cur, static_cast<std::uint32_t>(
                              std::countr_zero(cur ^ dst)));
      want.push_back(cur);
    }
    EXPECT_EQ(path, want) << src << " -> " << dst;
  }
}

TEST(FaultRouting, PathDetoursAroundFailedLink) {
  const Hypercube cube(3);
  fault::FaultSet fs;
  fs.fail_link(0, 1);
  const auto path = fault_aware_path(cube, fs, 0, 1);
  ASSERT_EQ(path.size(), 4u) << "shortest detour has 3 hops";
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 1u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(cube.are_neighbors(path[i], path[i + 1]));
    EXPECT_FALSE(fs.link_failed(path[i], path[i + 1]));
  }
}

TEST(FaultRouting, PathAvoidsDeadIntermediates) {
  const Hypercube cube(3);
  fault::FaultSet fs;
  fs.kill_node(1);
  fs.kill_node(2);
  const auto path = fault_aware_path(cube, fs, 0, 3);
  ASSERT_GE(path.size(), 2u);
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    EXPECT_FALSE(fs.node_dead(path[i]));
  }
}

TEST(FaultRouting, AvoidingEqualsPlainWhenHealthy) {
  const Hypercube cube(3);
  const std::vector<RouteRequest> reqs{{0, 7, {kTA}}, {3, 4, {make_tag(2)}}};
  for (const PortModel port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    const Schedule a = route_p2p(cube, port, reqs);
    const Schedule b = route_p2p_avoiding(cube, port, reqs, fault::FaultSet{});
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
      ASSERT_EQ(a.rounds[r].transfers.size(), b.rounds[r].transfers.size());
      for (std::size_t t = 0; t < a.rounds[r].transfers.size(); ++t) {
        EXPECT_EQ(a.rounds[r].transfers[t].src, b.rounds[r].transfers[t].src);
        EXPECT_EQ(a.rounds[r].transfers[t].dst, b.rounds[r].transfers[t].dst);
      }
    }
  }
}

TEST(MachineFaults, EmptyPlanIsBitIdentical) {
  const auto alg = algo::make_algorithm(algo::AlgoId::kCannon);
  const Matrix a = random_matrix(8, 8, 21);
  const Matrix b = random_matrix(8, 8, 22);
  for (const PortModel port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    Machine plain(Hypercube(2), port, CostParams{});
    const SimReport want = alg->run(a, b, plain).report;
    Machine with(Hypercube(2), port, CostParams{});
    with.set_fault_plan(plan_of(fault::FaultPlan{}));
    const SimReport got = alg->run(a, b, with).report;
    ASSERT_EQ(want.phases.size(), got.phases.size());
    for (std::size_t i = 0; i < want.phases.size(); ++i) {
      EXPECT_EQ(want.phases[i].rounds, got.phases[i].rounds);
      EXPECT_EQ(want.phases[i].word_cost, got.phases[i].word_cost);
      EXPECT_EQ(want.phases[i].comm_time, got.phases[i].comm_time);
      EXPECT_EQ(want.phases[i].compute_time, got.phases[i].compute_time);
      EXPECT_FALSE(got.phases[i].faulted());
    }
    EXPECT_EQ(want.async_makespan, got.async_makespan);
    EXPECT_TRUE(got.fault_events.empty());
  }
}

TEST(MachineFaults, FailedLinkIsDetouredWithAccounting) {
  Machine m(Hypercube(3), PortModel::kOnePort, CostParams{10.0, 2.0, 1.0});
  fault::FaultPlan p;
  p.set.fail_link(0, 1);
  m.set_fault_plan(plan_of(std::move(p)));
  m.store().put(0, kTA, {1.0, 2.0});
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .move_src = true}));
  EXPECT_FALSE(m.store().has(0, kTA));
  EXPECT_TRUE(m.store().has(1, kTA)) << "payload still lands logically";
  const PhaseStats t = m.report().totals();
  EXPECT_EQ(t.reroutes, 1u);
  EXPECT_EQ(t.extra_hops, 2u) << "3-hop detour = 2 hops beyond the link";
  EXPECT_EQ(t.rounds, 3u) << "one repair round per detour hop";
  EXPECT_EQ(t.fault_startups, 3u);
  EXPECT_EQ(t.messages, 3u);
  EXPECT_DOUBLE_EQ(t.comm_time, 3 * (10.0 + 2.0 * 2.0));
  EXPECT_EQ(t.retries, 0u);
}

TEST(MachineFaults, NodeDeathContractsOntoPartner) {
  Machine m(Hypercube(3), PortModel::kOnePort, CostParams{10.0, 2.0, 1.0});
  fault::FaultPlan p;
  p.set.kill_node(3);
  m.set_fault_plan(plan_of(std::move(p)));
  EXPECT_EQ(m.host_of(3), 2u) << "dim-0 partner absorbs the dead node";
  EXPECT_EQ(m.host_of(2), 2u);

  // Logical transfer 1 -> 3 physically becomes 1 -> 2 (not a link): detour.
  m.store().put(1, kTA, {4.0});
  m.run(single({.src = 1, .dst = 3, .tags = {kTA}, .move_src = true}));
  EXPECT_TRUE(m.store().has(3, kTA)) << "the store stays logical";
  const PhaseStats t = m.report().totals();
  EXPECT_EQ(t.reroutes, 1u);
  EXPECT_EQ(t.extra_hops, 1u);

  // A node-death event is on record.
  bool death_seen = false;
  for (const auto& ev : m.report().fault_events) {
    death_seen |= ev.kind == fault::FaultKind::kNodeDeath && ev.src == 3;
  }
  EXPECT_TRUE(death_seen);
}

TEST(MachineFaults, ContractionLocalTransferIsFree) {
  // 2 -> 3 with 3 hosted on 2: physically node-local, no cost at all.
  Machine m(Hypercube(3), PortModel::kOnePort, CostParams{10.0, 2.0, 1.0});
  fault::FaultPlan p;
  p.set.kill_node(3);
  m.set_fault_plan(plan_of(std::move(p)));
  m.store().put(2, kTA, {4.0});
  m.run(single({.src = 2, .dst = 3, .tags = {kTA}, .move_src = true}));
  EXPECT_TRUE(m.store().has(3, kTA));
  const PhaseStats t = m.report().totals();
  EXPECT_EQ(t.rounds, 0u);
  EXPECT_EQ(t.messages, 0u);
  EXPECT_DOUBLE_EQ(t.comm_time, 0.0);
}

TEST(MachineFaults, ContractionSumsComputePerHost) {
  Machine m(Hypercube(3), PortModel::kOnePort, CostParams{10.0, 2.0, 1.0});
  fault::FaultPlan p;
  p.set.kill_node(3);
  m.set_fault_plan(plan_of(std::move(p)));
  const std::vector<std::pair<NodeId, std::uint64_t>> work{{2, 10}, {3, 7},
                                                           {4, 12}};
  m.charge_compute(work);
  const PhaseStats t = m.report().totals();
  EXPECT_EQ(t.flops, 17u) << "host 2 runs its own 10 plus dead 3's 7";
  EXPECT_DOUBLE_EQ(t.compute_time, 17.0);
}

TEST(MachineFaults, TransientRetriesMatchThePlan) {
  fault::FaultPlan p;
  p.transient = fault::TransientSpec{.seed = 1234,
                                     .drop_prob = 0.5,
                                     .corrupt_prob = 0.0,
                                     .spike_prob = 0.0,
                                     .spike_time = 0.0,
                                     .max_attempts = 20,
                                     .backoff_base = 0.0};
  // Derive the expected number of failed attempts from the plan itself
  // (round_seq 0, link 0 -> 1), then check the machine agrees.
  std::uint64_t expect_retries = 0;
  for (std::uint32_t attempt = 1;; ++attempt) {
    if (p.attempt_outcome(0, 0, 1, attempt) == fault::FaultKind::kNone) break;
    ++expect_retries;
  }
  Machine m(Hypercube(3), PortModel::kOnePort, CostParams{10.0, 2.0, 1.0});
  m.set_fault_plan(plan_of(std::move(p)));
  m.store().put(0, kTA, {1.0, 2.0, 3.0});
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .move_src = true}));
  const PhaseStats t = m.report().totals();
  EXPECT_EQ(t.retries, expect_retries);
  EXPECT_EQ(t.rounds, 1u + expect_retries) << "each resend is a start-up";
  EXPECT_DOUBLE_EQ(t.comm_time,
                   static_cast<double>(1 + expect_retries) * (10.0 + 2.0 * 3.0));
  EXPECT_DOUBLE_EQ(t.fault_word_cost, 3.0 * static_cast<double>(expect_retries));
}

TEST(MachineFaults, SpikeDelaysWithoutRetry) {
  fault::FaultPlan p;
  p.transient = fault::TransientSpec{.seed = 5,
                                     .drop_prob = 0.0,
                                     .corrupt_prob = 0.0,
                                     .spike_prob = 1.0,
                                     .spike_time = 400.0,
                                     .max_attempts = 6,
                                     .backoff_base = 0.0};
  Machine m(Hypercube(3), PortModel::kOnePort, CostParams{10.0, 2.0, 1.0});
  m.set_fault_plan(plan_of(std::move(p)));
  m.store().put(0, kTA, {1.0});
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .move_src = true}));
  const PhaseStats t = m.report().totals();
  EXPECT_EQ(t.retries, 0u);
  EXPECT_EQ(t.rounds, 1u);
  EXPECT_DOUBLE_EQ(t.fault_delay, 400.0);
  EXPECT_DOUBLE_EQ(t.comm_time, 10.0 + 2.0 + 400.0);
}

TEST(MachineFaults, ExhaustedRetryBudgetAbortsWithDiagnosis) {
  fault::FaultPlan p;
  p.transient.seed = 11;
  p.transient.drop_prob = 1.0;
  p.transient.max_attempts = 3;
  Machine m(Hypercube(3), PortModel::kOnePort, CostParams{});
  m.set_fault_plan(plan_of(std::move(p)));
  m.store().put(0, kTA, {1.0});
  try {
    m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .move_src = true}));
    FAIL() << "expected FaultAbort";
  } catch (const fault::FaultAbort& fa) {
    EXPECT_EQ(fa.event().kind, fault::FaultKind::kRetryExhausted);
    EXPECT_EQ(fa.event().src, 0u);
    EXPECT_EQ(fa.event().dst, 1u);
    EXPECT_EQ(fa.event().attempt, 3u);
  }
}

TEST(MachineFaults, DisconnectingPlanIsRejectedAtInstall) {
  Machine m(Hypercube(1), PortModel::kOnePort, CostParams{});
  fault::FaultPlan p;
  p.set.fail_link(0, 1);  // the only link of a 2-node cube
  try {
    m.set_fault_plan(plan_of(std::move(p)));
    FAIL() << "expected FaultAbort";
  } catch (const fault::FaultAbort& fa) {
    EXPECT_EQ(fa.event().kind, fault::FaultKind::kUnroutable);
  }
}

TEST(PhaseStats, AddSumsResilienceFields) {
  PhaseStats a;
  a.retries = 2;
  a.reroutes = 1;
  a.extra_hops = 3;
  a.fault_startups = 4;
  a.fault_word_cost = 5.0;
  a.fault_delay = 6.0;
  PhaseStats b = a;
  b.add(a);
  EXPECT_EQ(b.retries, 4u);
  EXPECT_EQ(b.reroutes, 2u);
  EXPECT_EQ(b.extra_hops, 6u);
  EXPECT_EQ(b.fault_startups, 8u);
  EXPECT_DOUBLE_EQ(b.fault_word_cost, 10.0);
  EXPECT_DOUBLE_EQ(b.fault_delay, 12.0);
  EXPECT_TRUE(b.faulted());
  EXPECT_FALSE(PhaseStats{}.faulted());
}

TEST(Scenarios, CatalogueIsDeterministicAndConnected) {
  const Hypercube cube(3);
  const auto s1 = fault::chaos_scenarios(cube, 42);
  const auto s2 = fault::chaos_scenarios(cube, 42);
  ASSERT_EQ(s1.size(), 6u);
  EXPECT_EQ(s1.front().name, "baseline-empty-plan");
  EXPECT_TRUE(s1.front().plan.empty());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].name, s2[i].name);
    EXPECT_EQ(s1[i].plan.set.failed_links(), s2[i].plan.set.failed_links());
    EXPECT_EQ(s1[i].plan.set.dead_nodes(), s2[i].plan.set.dead_nodes());
    EXPECT_TRUE(s1[i].plan.set.connected(cube)) << s1[i].name;
  }
}

TEST(Scenarios, RandomLinkFaultsKeepCubeConnected) {
  const Hypercube cube(4);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const fault::FaultSet fs =
        fault::random_connected_link_faults(cube, seed, 4);
    EXPECT_EQ(fs.failed_links().size(), 4u);
    EXPECT_TRUE(fs.connected(cube));
  }
}

TEST(FaultPlan, BurstWindowsAreDeterministicAndExactlySized) {
  fault::FaultPlan p;
  p.transient.seed = 77;
  p.transient.drop_prob = 0.05;
  p.transient.burst.period = 16;
  p.transient.burst.len = 4;
  p.transient.burst.factor = 10.0;
  const fault::FaultPlan q = p;
  for (std::uint64_t cycle = 0; cycle < 32; ++cycle) {
    std::uint64_t hits = 0;
    for (std::uint64_t off = 0; off < 16; ++off) {
      const std::uint64_t r = cycle * 16 + off;
      EXPECT_EQ(p.in_burst(r), q.in_burst(r));  // pure hash, no state
      hits += p.in_burst(r) ? 1u : 0u;
    }
    // rel = (off - start) mod period sweeps every residue once per cycle, so
    // each cycle holds exactly `len` burst rounds wherever the window sits.
    EXPECT_EQ(hits, 4u) << "cycle " << cycle;
  }
  fault::FaultPlan inert = p;
  inert.transient.burst.factor = 1.0;  // a x1 window is no window at all
  EXPECT_FALSE(inert.transient.burst.active());
  EXPECT_FALSE(inert.in_burst(3));
  // The window must actually amplify: the per-round drop rate inside burst
  // windows strictly exceeds the rate outside (cross-multiplied to stay
  // integral).
  std::uint64_t in = 0, in_drops = 0, out = 0, out_drops = 0;
  for (std::uint64_t r = 0; r < 512; ++r) {
    const bool burst = p.in_burst(r);
    const bool drop =
        p.attempt_outcome(r, 0, 1, 1) == fault::FaultKind::kDrop;
    (burst ? in : out) += 1;
    if (drop) (burst ? in_drops : out_drops) += 1;
  }
  EXPECT_GT(in_drops * out, out_drops * in);
}

TEST(FaultPlan, JitterUnitIsDeterministicAndDecorrelates) {
  fault::FaultPlan p;
  p.transient.seed = 5;
  const fault::FaultPlan q = p;
  for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
    const double u = p.jitter_unit(9, 2, 3, attempt);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_EQ(u, q.jitter_unit(9, 2, 3, attempt));  // pure hash, no state
  }
  // Successive attempts and different rounds draw different units — that is
  // the whole point: synchronized retries must decorrelate.
  EXPECT_NE(p.jitter_unit(9, 2, 3, 1), p.jitter_unit(9, 2, 3, 2));
  EXPECT_NE(p.jitter_unit(9, 2, 3, 1), p.jitter_unit(10, 2, 3, 1));
}

TEST(MachineFaults, ZeroJitterKeepsBackoffBitIdenticalAndJitterOnlyAdds) {
  const auto fault_delay = [](double jitter) {
    fault::FaultPlan p;
    p.transient.seed = 11;
    p.transient.drop_prob = 0.8;
    p.transient.max_attempts = 20;
    p.transient.backoff_base = 0.5;
    p.transient.jitter = jitter;
    Machine m(Hypercube(3), PortModel::kOnePort, CostParams{});
    m.set_fault_plan(plan_of(std::move(p)));
    m.store().put(0, kTA, {1.0});
    m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .move_src = true}));
    const PhaseStats t = m.report().totals();
    EXPECT_GE(t.retries, 1u);
    return t.fault_delay;
  };
  const double plain = fault_delay(0.0);
  // jitter = 0 is the historical backoff, reproduced bit-for-bit.
  EXPECT_EQ(fault_delay(0.0), plain);
  // The jitter multiplier is (1 + jitter * u) with u in [0, 1): it can only
  // lengthen the wait, and with retries present it almost surely does.
  EXPECT_GT(fault_delay(0.4), plain);
}

TEST(FaultPlan, DetourDiscoveryIsDeterministicAndDirectionless) {
  fault::FaultPlan p;
  p.transient.seed = 21;
  p.transient.detour_fail_prob = 0.5;
  const fault::FaultPlan q = p;
  bool any_hit = false;
  bool any_miss = false;
  for (std::uint64_t r = 0; r < 64; ++r) {
    const bool h = p.detour_hit(r, 3, 7);
    EXPECT_EQ(h, q.detour_hit(r, 3, 7));  // pure hash, no state
    EXPECT_EQ(h, p.detour_hit(r, 7, 3));  // canonical link key
    any_hit |= h;
    any_miss |= !h;
  }
  EXPECT_TRUE(any_hit);
  EXPECT_TRUE(any_miss);
  p.transient.detour_fail_prob = 0.0;
  EXPECT_FALSE(p.detour_hit(0, 3, 7));
}

TEST(MachineFaults, RunWideRetryBudgetAbortsBeforePerMessageAttempts) {
  fault::FaultPlan p;
  p.transient.seed = 11;
  p.transient.drop_prob = 1.0;
  p.transient.max_attempts = 32;  // the per-message budget is ample...
  p.budget.max_retries = 3;       // ...the run-wide budget is not
  Machine m(Hypercube(3), PortModel::kOnePort, CostParams{});
  m.set_fault_plan(plan_of(std::move(p)));
  m.store().put(0, kTA, {1.0});
  try {
    m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .move_src = true}));
    FAIL() << "expected FaultAbort";
  } catch (const fault::FaultAbort& fa) {
    EXPECT_EQ(fa.event().kind, fault::FaultKind::kBudgetExhausted);
    EXPECT_NE(fa.event().detail.find("retry budget (3)"), std::string::npos)
        << fa.event().detail;
  }
}

TEST(MachineFaults, RecoveryDeadlineAbortsOnCumulativeFaultDelay) {
  fault::FaultPlan p;
  p.transient.seed = 13;
  p.transient.spike_prob = 1.0;
  p.transient.spike_time = 10.0;
  p.budget.deadline = 8.0;  // one guaranteed spike already exceeds it
  Machine m(Hypercube(3), PortModel::kOnePort, CostParams{});
  m.set_fault_plan(plan_of(std::move(p)));
  m.store().put(0, kTA, {1.0});
  try {
    m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .move_src = true}));
    FAIL() << "expected FaultAbort";
  } catch (const fault::FaultAbort& fa) {
    EXPECT_EQ(fa.event().kind, fault::FaultKind::kBudgetExhausted);
    EXPECT_NE(fa.event().detail.find("deadline"), std::string::npos)
        << fa.event().detail;
  }
}

TEST(FaultFuzz, SpecRoundTripsExactly) {
  const Hypercube cube(3);
  for (const fault::Scenario& s : fault::fuzz_seed_corpus(cube, 7)) {
    const std::string spec = fault::plan_spec(s.plan);
    const fault::FaultPlan back = fault::plan_from_spec(spec);
    EXPECT_EQ(fault::plan_spec(back), spec) << s.name;
    EXPECT_EQ(back.empty(), s.plan.empty()) << s.name;
  }
  EXPECT_THROW((void)fault::plan_from_spec("drop=fast"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::plan_from_spec("warp=0.5"),
               std::invalid_argument);
}

TEST(FaultFuzz, SeedCorpusAndMutationAreDeterministic) {
  const Hypercube cube(3);
  const auto c1 = fault::fuzz_seed_corpus(cube, 7);
  const auto c2 = fault::fuzz_seed_corpus(cube, 7);
  ASSERT_EQ(c1.size(), c2.size());
  ASSERT_FALSE(c1.empty());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].name, c2[i].name);
    EXPECT_EQ(fault::plan_spec(c1[i].plan), fault::plan_spec(c2[i].plan));
  }
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const fault::FaultPlan& base = c1[seed % c1.size()].plan;
    EXPECT_EQ(fault::plan_spec(fault::mutate_plan(base, cube, seed)),
              fault::plan_spec(fault::mutate_plan(base, cube, seed)))
        << "seed " << seed;
  }
}

TEST(FaultFuzz, CoverageMapTracksTheFeatureUniverse) {
  const auto& universe = fault::CoverageMap::universe();
  // 7 rungs + 5 escalations + 15 kinds + 5 wire-fault features
  EXPECT_EQ(universe.size(), 32u);
  fault::CoverageMap cov;
  EXPECT_DOUBLE_EQ(cov.ratio(), 0.0);
  EXPECT_TRUE(cov.record("rung:retry"));
  EXPECT_FALSE(cov.record("rung:retry"));  // novel only the first time
  EXPECT_TRUE(cov.record("bogus:feature"));  // kept, but never counted
  EXPECT_DOUBLE_EQ(cov.ratio(), 1.0 / 32.0);
  EXPECT_EQ(cov.missing().size(), 31u);
  EXPECT_EQ(cov.record_all(universe), 31u);
  EXPECT_DOUBLE_EQ(cov.ratio(), 1.0);
  EXPECT_TRUE(cov.missing().empty());
  EXPECT_NE(cov.json().find("\"ratio\""), std::string::npos);
}

TEST(FaultFuzz, ObservedFeaturesNameRungsKindsAndEscalations) {
  fault::RunObservation obs;
  obs.completed = true;
  auto feats = fault::observed_features(obs);
  ASSERT_EQ(feats.size(), 1u);
  EXPECT_EQ(feats[0], "rung:clean");
  obs.retries = 2;
  obs.reroutes = 1;
  obs.event_kinds = {fault::FaultKind::kDrop, fault::FaultKind::kReroute};
  feats = fault::observed_features(obs);
  const std::set<std::string> set(feats.begin(), feats.end());
  EXPECT_TRUE(set.contains("rung:retry"));
  EXPECT_TRUE(set.contains("rung:reroute"));
  EXPECT_TRUE(set.contains("esc:retry->reroute"));
  EXPECT_TRUE(set.contains("kind:drop"));
  EXPECT_TRUE(set.contains("kind:reroute"));
  EXPECT_FALSE(set.contains("rung:clean"));  // a recovered run is not clean
  obs.recoveries = 1;
  obs.restarts = 1;
  obs.abort_kind = fault::FaultKind::kBudgetExhausted;
  feats = fault::observed_features(obs);
  const std::set<std::string> esc(feats.begin(), feats.end());
  EXPECT_TRUE(esc.contains("esc:rollback->restart"));
  EXPECT_TRUE(esc.contains("esc:restart->abort"));
  EXPECT_TRUE(esc.contains("kind:budget-exhausted"));
}

TEST(FaultFuzz, ShrinkRemovesEverythingIrrelevant) {
  const Hypercube cube(3);
  fault::FaultPlan noisy;
  noisy.set.fail_link(0, 1);
  noisy.set.fail_link(2, 6);
  noisy.set.kill_node(7);
  noisy.transient.seed = 9;
  noisy.transient.drop_prob = 0.2;
  noisy.transient.spike_prob = 0.1;
  noisy.transient.spike_time = 2.0;
  noisy.kill_node_at_round(3, 4);
  noisy.kill_node_at_replay_round(5, 1);
  noisy.corrupt_checkpoint.insert(0);
  noisy.budget.max_reroutes = 5;
  const auto fails = [](const fault::FaultPlan& p) {
    return p.set.link_failed(0, 1);  // the "bug" needs only this one link
  };
  ASSERT_TRUE(fails(noisy));
  const fault::FaultPlan min = fault::shrink_plan(noisy, fails);
  EXPECT_TRUE(fails(min));
  EXPECT_EQ(min.set.failed_links().size(), 1u);
  EXPECT_TRUE(min.set.dead_nodes().empty());
  EXPECT_TRUE(min.kill_at.empty());
  EXPECT_TRUE(min.kill_at_replay.empty());
  EXPECT_TRUE(min.corrupt_checkpoint.empty());
  EXPECT_FALSE(min.transient.any());
  EXPECT_FALSE(min.budget.any());
}

}  // namespace
}  // namespace hcmm
