// Randomized property tests ("fuzz"): collectives and schedules under
// random subcube placements, payload sizes (including sizes that defeat
// even chunking) and seeds.  Each case checks functional correctness plus
// the structural invariants that hold regardless of sizes:
//   * round count == subcube dimension for every tree collective;
//   * total link words conservation;
//   * port-model legality (implicitly — the Machine validates every round).

#include <gtest/gtest.h>

#include <numeric>

#include "hcmm/analysis/passes.hpp"
#include "hcmm/analysis/placement.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/fault/scenarios.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/sim/router.hpp"
#include "hcmm/support/prng.hpp"

namespace hcmm {
namespace {

// Random subcube of `dim` free dimensions inside a larger cube.
Subcube random_subcube(Prng& rng, const Hypercube& hc, std::uint32_t dim) {
  std::vector<std::uint32_t> bits(hc.dim());
  std::iota(bits.begin(), bits.end(), 0u);
  for (std::uint32_t i = hc.dim(); i-- > 1;) {
    std::swap(bits[i], bits[rng.next_below(i + 1)]);
  }
  std::uint32_t mask = 0;
  for (std::uint32_t i = 0; i < dim; ++i) mask |= (1u << bits[i]);
  const auto base = static_cast<NodeId>(rng.next_below(hc.size()));
  return Subcube(base, mask);
}

std::vector<double> random_payload(Prng& rng, std::size_t words) {
  std::vector<double> v(words);
  for (auto& x : v) x = rng.uniform(-10.0, 10.0);
  return v;
}

class FuzzColl : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzColl, BcastArbitrarySizesAndRoots) {
  Prng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto port = rng.next_below(2) == 0 ? PortModel::kOnePort
                                             : PortModel::kMultiPort;
    Machine m(Hypercube(6), port, CostParams{7, 2, 1});
    const auto dim = static_cast<std::uint32_t>(1 + rng.next_below(5));
    const Subcube sc = random_subcube(rng, m.cube(), dim);
    const NodeId root =
        sc.node_at(static_cast<std::uint32_t>(rng.next_below(sc.size())));
    const std::size_t words = 1 + rng.next_below(40);
    const auto payload = random_payload(rng, words);
    m.store().put(root, make_tag(1), payload);
    m.reset_stats();
    coll::op_bcast(m, sc, root, make_tag(1));
    EXPECT_EQ(m.report().totals().rounds, dim);
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      ASSERT_TRUE(m.store().has(sc.node_at(r), make_tag(1)));
      EXPECT_EQ(*m.store().get(sc.node_at(r), make_tag(1)), payload)
          << "trial " << trial << " rank " << r;
    }
  }
}

TEST_P(FuzzColl, ReduceMatchesSerialSum) {
  Prng rng(GetParam() + 1000);
  for (int trial = 0; trial < 20; ++trial) {
    const auto port = rng.next_below(2) == 0 ? PortModel::kOnePort
                                             : PortModel::kMultiPort;
    Machine m(Hypercube(6), port, CostParams{7, 2, 1});
    const auto dim = static_cast<std::uint32_t>(1 + rng.next_below(5));
    const Subcube sc = random_subcube(rng, m.cube(), dim);
    const NodeId root =
        sc.node_at(static_cast<std::uint32_t>(rng.next_below(sc.size())));
    const std::size_t words = 1 + rng.next_below(33);
    std::vector<double> expect(words, 0.0);
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      const auto payload = random_payload(rng, words);
      for (std::size_t i = 0; i < words; ++i) expect[i] += payload[i];
      m.store().put(sc.node_at(r), make_tag(2), payload);
    }
    m.reset_stats();
    coll::op_reduce(m, sc, root, make_tag(2));
    const auto& got = *m.store().get(root, make_tag(2));
    ASSERT_EQ(got.size(), words);
    for (std::size_t i = 0; i < words; ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-9) << "trial " << trial;
    }
    EXPECT_EQ(m.report().totals().rounds, dim);
  }
}

TEST_P(FuzzColl, AllgatherVariedSizesPerRank) {
  Prng rng(GetParam() + 2000);
  for (int trial = 0; trial < 15; ++trial) {
    const auto port = rng.next_below(2) == 0 ? PortModel::kOnePort
                                             : PortModel::kMultiPort;
    Machine m(Hypercube(6), port, CostParams{7, 2, 1});
    const auto dim = static_cast<std::uint32_t>(1 + rng.next_below(4));
    const Subcube sc = random_subcube(rng, m.cube(), dim);
    std::vector<Tag> tags(sc.size());
    std::vector<std::vector<double>> payloads(sc.size());
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      tags[r] = make_tag(3, static_cast<std::uint16_t>(r));
      payloads[r] = random_payload(rng, 1 + rng.next_below(25));
      m.store().put(sc.node_at(r), tags[r], payloads[r]);
    }
    m.reset_stats();
    coll::op_allgather(m, sc, tags);
    for (std::uint32_t holder = 0; holder < sc.size(); ++holder) {
      for (std::uint32_t r = 0; r < sc.size(); ++r) {
        ASSERT_TRUE(m.store().has(sc.node_at(holder), tags[r]));
        EXPECT_EQ(*m.store().get(sc.node_at(holder), tags[r]), payloads[r]);
      }
    }
    EXPECT_EQ(m.report().totals().rounds, dim);
  }
}

TEST_P(FuzzColl, AlltoallRandomSizes) {
  Prng rng(GetParam() + 3000);
  for (int trial = 0; trial < 10; ++trial) {
    const auto port = rng.next_below(2) == 0 ? PortModel::kOnePort
                                             : PortModel::kMultiPort;
    Machine m(Hypercube(5), port, CostParams{7, 2, 1});
    const auto dim = static_cast<std::uint32_t>(1 + rng.next_below(4));
    const Subcube sc = random_subcube(rng, m.cube(), dim);
    const std::uint32_t q = sc.size();
    const std::size_t words = 1 + rng.next_below(20);
    std::vector<Tag> flat(static_cast<std::size_t>(q) * q);
    std::vector<std::vector<double>> payloads(flat.size());
    for (std::uint32_t s = 0; s < q; ++s) {
      for (std::uint32_t t = 0; t < q; ++t) {
        const std::size_t idx = static_cast<std::size_t>(s) * q + t;
        flat[idx] = make_tag(4, static_cast<std::uint16_t>(s),
                             static_cast<std::uint16_t>(t));
        payloads[idx] = random_payload(rng, words);
        m.store().put(sc.node_at(s), flat[idx], payloads[idx]);
      }
    }
    m.reset_stats();
    coll::op_alltoall(m, sc, flat);
    for (std::uint32_t s = 0; s < q; ++s) {
      for (std::uint32_t t = 0; t < q; ++t) {
        const std::size_t idx = static_cast<std::size_t>(s) * q + t;
        ASSERT_TRUE(m.store().has(sc.node_at(t), flat[idx]));
        EXPECT_EQ(*m.store().get(sc.node_at(t), flat[idx]), payloads[idx]);
      }
    }
  }
}

TEST_P(FuzzColl, ReduceScatterRandomSizes) {
  Prng rng(GetParam() + 4000);
  for (int trial = 0; trial < 10; ++trial) {
    const auto port = rng.next_below(2) == 0 ? PortModel::kOnePort
                                             : PortModel::kMultiPort;
    Machine m(Hypercube(5), port, CostParams{7, 2, 1});
    const auto dim = static_cast<std::uint32_t>(1 + rng.next_below(4));
    const Subcube sc = random_subcube(rng, m.cube(), dim);
    const std::uint32_t q = sc.size();
    std::vector<Tag> tags(q);
    std::vector<std::size_t> sizes(q);
    for (std::uint32_t r = 0; r < q; ++r) {
      tags[r] = make_tag(5, static_cast<std::uint16_t>(r));
      sizes[r] = 1 + rng.next_below(15);
    }
    std::vector<std::vector<double>> expect(q);
    for (std::uint32_t r = 0; r < q; ++r) expect[r].assign(sizes[r], 0.0);
    for (std::uint32_t h = 0; h < q; ++h) {
      for (std::uint32_t r = 0; r < q; ++r) {
        const auto payload = random_payload(rng, sizes[r]);
        for (std::size_t i = 0; i < sizes[r]; ++i) expect[r][i] += payload[i];
        m.store().put(sc.node_at(h), tags[r], payload);
      }
    }
    m.reset_stats();
    coll::op_reduce_scatter(m, sc, tags);
    for (std::uint32_t r = 0; r < q; ++r) {
      const auto& got = *m.store().get(sc.node_at(r), tags[r]);
      ASSERT_EQ(got.size(), sizes[r]);
      for (std::size_t i = 0; i < sizes[r]; ++i) {
        EXPECT_NEAR(got[i], expect[r][i], 1e-9);
      }
    }
  }
}

// Property: for any connected set of failed links, the fault-aware router
// produces a schedule that (a) never crosses a failed link, (b) passes every
// static-analysis pass against the real initial placement, and (c) delivers
// every payload when executed.
TEST_P(FuzzColl, FaultAwareRoutingAvoidsLinksAndStaysLegal) {
  Prng rng(GetParam() + 5000);
  const analysis::Analyzer analyzer = analysis::Analyzer::with_default_passes();
  for (int trial = 0; trial < 10; ++trial) {
    const auto port = rng.next_below(2) == 0 ? PortModel::kOnePort
                                             : PortModel::kMultiPort;
    Machine m(Hypercube(4), port, CostParams{7, 2, 1});
    const fault::FaultSet faults = fault::random_connected_link_faults(
        m.cube(), rng.next_u64(),
        static_cast<std::uint32_t>(1 + rng.next_below(4)));
    ASSERT_TRUE(faults.connected(m.cube()));

    const std::size_t nreq = 1 + rng.next_below(6);
    std::vector<RouteRequest> reqs;
    std::vector<std::vector<double>> payloads;
    for (std::size_t i = 0; i < nreq; ++i) {
      const auto src = static_cast<NodeId>(rng.next_below(m.cube().size()));
      const auto dst = static_cast<NodeId>(rng.next_below(m.cube().size()));
      const Tag tag = make_tag(6, static_cast<std::uint16_t>(i));
      payloads.push_back(random_payload(rng, 1 + rng.next_below(12)));
      m.store().put(src, tag, payloads.back());
      reqs.push_back(RouteRequest{src, dst, {tag}});
    }

    const Schedule s = route_p2p_avoiding(m.cube(), port, reqs, faults);
    for (const Round& round : s.rounds) {
      for (const Transfer& t : round.transfers) {
        EXPECT_FALSE(faults.link_failed(t.src, t.dst))
            << "trial " << trial << ": transfer " << t.src << "->" << t.dst
            << " crosses a failed link";
      }
    }

    const analysis::Placement placed = analysis::snapshot_placement(m.store());
    analysis::AnalysisInput in;
    in.schedule = &s;
    in.cube = m.cube();
    in.port = port;
    in.initial = &placed;
    const analysis::DiagnosticList dl = analyzer.analyze(in);
    EXPECT_FALSE(dl.has_errors()) << "trial " << trial << ":\n"
                                  << dl.to_string();

    m.run(s);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_TRUE(m.store().has(reqs[i].dst, reqs[i].tags[0]))
          << "trial " << trial << ": request " << i << " (" << reqs[i].src
          << "->" << reqs[i].dst << ") undelivered";
      EXPECT_EQ(*m.store().get(reqs[i].dst, reqs[i].tags[0]), payloads[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzColl,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace hcmm
