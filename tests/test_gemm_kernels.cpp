// Tests for the SIMD gemm dispatch ladder: the ULP-compare harness itself
// (ulp_distance properties, the gemm_tolerance error model, worst-case
// cancellation inputs), the kernel-equivalence matrix over every
// dispatchable ISA x edge shapes, strict HCMM_GEMM_KERNEL parsing, vector
// threaded == serial bit-identity, and the cpu feature probe.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/gemm_verify.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/support/cpu.hpp"
#include "hcmm/support/thread_pool.hpp"

namespace hcmm {
namespace {

/// Pins HCMM_GEMM_KERNEL for one scope and restores pristine dispatch state
/// (no env var, default kernel, re-resolved vector microkernel) on exit.
class EnvKernelGuard {
 public:
  explicit EnvKernelGuard(const std::string& value) {
    ::setenv("HCMM_GEMM_KERNEL", value.c_str(), 1);
    reset_gemm_env_for_testing();
  }
  ~EnvKernelGuard() {
    ::unsetenv("HCMM_GEMM_KERNEL");
    reset_gemm_env_for_testing();
  }
  EnvKernelGuard(const EnvKernelGuard&) = delete;
  EnvKernelGuard& operator=(const EnvKernelGuard&) = delete;
};

// -------------------------------------------------------------- ulp harness

TEST(UlpDistance, AdjacentDoublesAreOneApart) {
  const double one_up = std::nextafter(1.0, 2.0);
  EXPECT_EQ(ulp_distance(1.0, one_up), 1u);
  EXPECT_EQ(ulp_distance(one_up, 1.0), 1u);
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
}

TEST(UlpDistance, CountsStepsAcrossPowerOfTwoBoundary) {
  // 2.0 is a binade boundary: one step down has half the spacing of one step
  // up, but both are exactly one representable value away.
  EXPECT_EQ(ulp_distance(std::nextafter(2.0, 1.0), 2.0), 1u);
  EXPECT_EQ(ulp_distance(2.0, std::nextafter(2.0, 3.0)), 1u);
  EXPECT_EQ(ulp_distance(std::nextafter(2.0, 1.0), std::nextafter(2.0, 3.0)),
            2u);
}

TEST(UlpDistance, SignedZerosCollapse) {
  EXPECT_EQ(ulp_distance(-0.0, 0.0), 0u);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0u);
  // The smallest denormals straddle zero two representable steps apart.
  const double dmin = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(ulp_distance(-dmin, dmin), 2u);
  EXPECT_EQ(ulp_distance(-dmin, 0.0), 1u);
}

TEST(UlpDistance, NanIsInfinitelyFar) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ulp_distance(nan, 1.0), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ulp_distance(1.0, nan), std::numeric_limits<std::uint64_t>::max());
}

TEST(UlpDistance, OrderedAcrossSigns) {
  // The mapping is monotone over the whole double line, so distances through
  // zero behave like counting representable values.
  EXPECT_GT(ulp_distance(-1.0, 1.0), ulp_distance(-0.5, 0.5));
  EXPECT_EQ(ulp_distance(-1.0, -1.0), 0u);
}

TEST(GemmTolerance, ScalesWithDepthAndMagnitude) {
  const double t1 = gemm_tolerance(16, 1.0, 1.0);
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(gemm_tolerance(32, 1.0, 1.0), 2.0 * t1);
  EXPECT_DOUBLE_EQ(gemm_tolerance(16, 4.0, 1.0), 4.0 * t1);
  // Degenerate all-zero operands still get a positive bound.
  EXPECT_GT(gemm_tolerance(0, 0.0, 0.0), 0.0);
}

TEST(CompareGemm, AcceptsReassociationAndRejectsRealErrors) {
  // Worst-case summation input: one huge cancelling pair plus k-2 units.
  // Any reassociation of the sum lands within a few ULPs of 2^53 of the
  // true value — comfortably inside the per-term error model — while a
  // genuinely wrong kernel is off by whole units.
  constexpr std::size_t k = 8;
  Matrix a(1, k);
  Matrix b(k, 1);
  a(0, 0) = 9.0e15;
  a(0, 1) = -9.0e15;
  for (std::size_t i = 2; i < k; ++i) a(0, i) = 1.0;
  for (std::size_t i = 0; i < k; ++i) b(i, 0) = 1.0;
  const Matrix oracle = multiply_naive(a, b);

  const double tol = gemm_tolerance(k, max_abs(a), max_abs(b));
  Matrix near = oracle;
  near(0, 0) += 0.25 * tol;
  const GemmCompare ok_cmp = compare_gemm(near, oracle, k, max_abs(a),
                                          max_abs(b));
  EXPECT_TRUE(ok_cmp.ok);
  EXPECT_GT(ok_cmp.max_ulp, 0u);

  Matrix far = oracle;
  far(0, 0) += 10.0 * tol;
  const GemmCompare bad_cmp = compare_gemm(far, oracle, k, max_abs(a),
                                           max_abs(b));
  EXPECT_FALSE(bad_cmp.ok);
  EXPECT_EQ(bad_cmp.over, 1u);
}

TEST(CompareGemm, NanNeverPasses) {
  Matrix oracle(2, 2);
  Matrix test = oracle;
  test(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(compare_gemm(test, oracle, 4, 1.0, 1.0).ok);
}

// ---------------------------------------------------- kernel equivalence

// Every microkernel tail and blocking boundary: m % mr != 0 and n % nr != 0
// for mr up to 8 / nr up to 16, k under one kc panel, k spanning multiple
// kc panels (kc = 256), m beyond one mc stripe (mc = 128), and 1x1.
constexpr struct {
  std::size_t m, k, n;
} kEdgeShapes[] = {{1, 1, 1},    {1, 300, 9},   {3, 5, 7},    {5, 9, 17},
                   {6, 257, 31}, {13, 64, 13},  {16, 16, 1},  {33, 31, 29},
                   {12, 600, 20}, {130, 520, 40}};

TEST(GemmKernelMatrix, EveryDispatchableIsaPassesTheUlpGate) {
  for (const std::string& isa : gemm_vector_isas()) {
    EnvKernelGuard guard(isa);
    EXPECT_EQ(gemm_vector_ident().isa, isa);
    for (const auto& s : kEdgeShapes) {
      const Matrix a = random_matrix(s.m, s.k, 300 + s.m);
      const Matrix b = random_matrix(s.k, s.n, 400 + s.n);
      const Matrix oracle = multiply_naive(a, b);
      Matrix c(s.m, s.n);
      gemm_accumulate_fast(a, b, c);
      const GemmCompare cmp = compare_gemm(c, oracle, s.k, max_abs(a),
                                           max_abs(b));
      EXPECT_TRUE(cmp.ok) << isa << " at " << s.m << "x" << s.k << "x" << s.n
                          << ": diff " << cmp.max_abs_diff << " > tol "
                          << cmp.tolerance;
    }
  }
}

TEST(GemmKernelMatrix, ScalarFallbackIsAlwaysListed) {
  const std::vector<std::string> isas = gemm_vector_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.back(), "scalar");
}

TEST(GemmKernelMatrix, VerificationLadderPasses) {
  const LadderReport report = verify_vector_kernel();
  EXPECT_EQ(report.rows.size(), 16u);
  for (const LadderRow& row : report.rows) {
    EXPECT_TRUE(row.cmp.ok) << row.m << "x" << row.k << "x" << row.n;
  }
  EXPECT_TRUE(report.ok);
}

TEST(GemmKernelMatrix, FastPathAccumulatesOntoExistingValues) {
  const Matrix a = random_matrix(9, 33, 71);
  const Matrix b = random_matrix(33, 14, 72);
  Matrix c(9, 14);
  for (double& v : c.data()) v = 2.0;
  gemm_accumulate_fast(a, b, c);
  Matrix expected = multiply_naive(a, b);
  for (double& v : expected.data()) v += 2.0;
  const GemmCompare cmp = compare_gemm(c, expected, 33, max_abs(a),
                                       max_abs(b));
  EXPECT_TRUE(cmp.ok) << "diff " << cmp.max_abs_diff;
}

// ------------------------------------------------------- threaded identity

TEST(GemmKernelMatrix, VectorThreadedMatchesSerialBitExactly) {
  // The vector path parallelizes B packing and MC row blocks — all disjoint
  // writes — so any pool size must reproduce the serial result bit for bit.
  EnvKernelGuard guard("vector");
  const Matrix a = random_matrix(130, 257, 81);
  const Matrix b = random_matrix(257, 70, 82);
  const Matrix serial = multiply_tiled(a, b);
  for (const std::size_t threads : {1u, 2u, 3u, 7u}) {
    ThreadPool pool(threads);
    const Matrix threaded = multiply_threaded(a, b, pool);
    EXPECT_LE(max_abs_diff(serial, threaded), 0.0)
        << "pool size " << threads;
  }
}

TEST(GemmKernelMatrix, DefaultPathStaysBitExact) {
  // With no env override the process default remains the bit-exact micro
  // kernel: distributed algorithms and ABFT depend on it.
  reset_gemm_env_for_testing();
  EXPECT_EQ(gemm_kernel(), GemmKernel::kMicro);
  EXPECT_EQ(gemm_ident().path, "micro");
  const Matrix a = random_matrix(13, 77, 91);
  const Matrix b = random_matrix(77, 21, 92);
  Matrix c(13, 21);
  gemm_accumulate(a, b, c);
  EXPECT_LE(max_abs_diff(c, multiply_naive(a, b)), 0.0);
}

// ------------------------------------------------------------ env override

TEST(GemmEnvOverride, GarbageValueThrows) {
  EnvKernelGuard guard("fastest-please");
  EXPECT_THROW(gemm_ident(), CheckError);
}

TEST(GemmEnvOverride, UnavailableIsaThrows) {
  // Pick a named ISA this build/CPU cannot dispatch; every platform lacks
  // at least one of these two.
  const std::vector<std::string> isas = gemm_vector_isas();
  auto missing = [&](const char* isa) {
    return std::find(isas.begin(), isas.end(), isa) == isas.end();
  };
  const char* unavailable =
      missing("neon") ? "neon" : (missing("avx512") ? "avx512" : nullptr);
  ASSERT_NE(unavailable, nullptr);
  EnvKernelGuard guard(unavailable);
  Matrix c(2, 2);
  const Matrix a = random_matrix(2, 2, 1);
  const Matrix b = random_matrix(2, 2, 2);
  EXPECT_THROW(gemm_accumulate_fast(a, b, c), CheckError);
}

TEST(GemmEnvOverride, NamedKernelsPinTheDefaultPath) {
  {
    EnvKernelGuard guard("legacy");
    EXPECT_EQ(gemm_ident().path, "legacy");
  }
  {
    EnvKernelGuard guard("oracle");
    EXPECT_EQ(gemm_ident().path, "micro");
  }
  {
    EnvKernelGuard guard("vector");
    const GemmIdent ident = gemm_ident();
    EXPECT_EQ(ident.path, "vector");
    EXPECT_FALSE(ident.isa.empty());
    EXPECT_GE(ident.mr, 1u);
    EXPECT_GE(ident.nr, 1u);
    // The pinned vector default must still produce correct products.
    const Matrix a = random_matrix(10, 40, 5);
    const Matrix b = random_matrix(40, 11, 6);
    const Matrix c = multiply_tiled(a, b);
    const GemmCompare cmp = compare_gemm(c, multiply_naive(a, b), 40,
                                         max_abs(a), max_abs(b));
    EXPECT_TRUE(cmp.ok);
  }
}

// -------------------------------------------------------------- cpu probe

TEST(CpuFeatures, SummaryIsConsistentWithDispatch) {
  const cpu::Features& f = cpu::features();
  const std::string summary = cpu::summary();
  EXPECT_FALSE(summary.empty());
  const std::vector<std::string> isas = gemm_vector_isas();
  auto listed = [&](const char* isa) {
    return std::find(isas.begin(), isas.end(), isa) != isas.end();
  };
#if !defined(HCMM_DISABLE_SIMD)
  // When the hardware has the ISA and the kernels are compiled in, dispatch
  // must offer it.
  if (f.avx512f && f.avx512dq && f.avx512vl) {
    EXPECT_TRUE(listed("avx512"));
  }
  if (f.avx2 && f.fma) {
    EXPECT_TRUE(listed("avx2"));
  }
  if (f.neon) {
    EXPECT_TRUE(listed("neon"));
  }
#else
  // SIMD compiled out: dispatch offers scalar only, whatever the hardware
  // reports.
  (void)f;
  EXPECT_FALSE(listed("avx512"));
  EXPECT_FALSE(listed("avx2"));
  EXPECT_FALSE(listed("neon"));
  EXPECT_EQ(isas.size(), 1u);
#endif
}

}  // namespace
}  // namespace hcmm
