// Tests for the extension topologies: the rectangular 3-D grid behind the
// p^{1/4} x p^{1/4} x sqrt(p) variant of 3-D All, and the supernode grid
// behind the §3.5 combinations.

#include <gtest/gtest.h>

#include <set>

#include "hcmm/algo/supergrid.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm {
namespace {

TEST(Grid3DRect, CoordsRoundTripAndCoverage) {
  const Grid3DRect grid(2, 4, 8);
  EXPECT_EQ(grid.p(), 64u);
  std::set<NodeId> seen;
  for (std::uint32_t i = 0; i < grid.qx(); ++i) {
    for (std::uint32_t j = 0; j < grid.qy(); ++j) {
      for (std::uint32_t k = 0; k < grid.qz(); ++k) {
        const NodeId n = grid.node(i, j, k);
        EXPECT_TRUE(seen.insert(n).second);
        const auto ijk = grid.coords(n);
        EXPECT_EQ(ijk[0], i);
        EXPECT_EQ(ijk[1], j);
        EXPECT_EQ(ijk[2], k);
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Grid3DRect, ChainsAreSubcubesOfAxisLength) {
  const Grid3DRect grid(4, 4, 16);  // the p = 256 extension shape
  EXPECT_EQ(grid.x_chain(0, 0).size(), 4u);
  EXPECT_EQ(grid.y_chain(0, 0).size(), 4u);
  EXPECT_EQ(grid.z_chain(0, 0).size(), 16u);
  for (std::uint32_t t = 0; t < grid.qz(); ++t) {
    EXPECT_TRUE(grid.z_chain(1, 2).contains(grid.node(1, 2, t)));
  }
  for (std::uint32_t t = 0; t < grid.qx(); ++t) {
    EXPECT_TRUE(grid.x_chain(2, 5).contains(grid.node(t, 2, 5)));
  }
  for (std::uint32_t t = 0; t < grid.qy(); ++t) {
    EXPECT_TRUE(grid.y_chain(3, 7).contains(grid.node(3, t, 7)));
  }
}

TEST(Grid3DRect, UnitStepsAreSingleLinksOnEveryAxis) {
  const Grid3DRect grid(2, 4, 8);
  const Hypercube& hc = grid.cube();
  for (std::uint32_t k = 0; k < grid.qz(); ++k) {
    EXPECT_TRUE(hc.are_neighbors(grid.node(0, 0, k),
                                 grid.node(0, 0, (k + 1) % grid.qz())));
  }
  for (std::uint32_t j = 0; j < grid.qy(); ++j) {
    EXPECT_TRUE(hc.are_neighbors(grid.node(1, j, 3),
                                 grid.node(1, (j + 1) % grid.qy(), 3)));
  }
}

TEST(Grid3DRect, DegenerateAxes) {
  const Grid3DRect grid(1, 1, 4);
  EXPECT_EQ(grid.p(), 4u);
  EXPECT_EQ(grid.x_chain(0, 2).size(), 1u);
  EXPECT_EQ(grid.z_chain(0, 0).size(), 4u);
  EXPECT_THROW((void)grid.node(1, 0, 0), CheckError);
}

using algo::detail::SuperGrid;
using algo::detail::default_super_split;

TEST(SuperGrid, NodeCoverageAndDisjointFields) {
  const SuperGrid sg(2, 4);  // p = 8 * 16 = 128
  EXPECT_EQ(sg.p(), 128u);
  std::set<NodeId> seen;
  for (std::uint32_t u = 0; u < sg.rho(); ++u) {
    for (std::uint32_t v = 0; v < sg.rho(); ++v) {
      for (std::uint32_t i = 0; i < sg.sigma(); ++i) {
        for (std::uint32_t j = 0; j < sg.sigma(); ++j) {
          for (std::uint32_t k = 0; k < sg.sigma(); ++k) {
            EXPECT_TRUE(seen.insert(sg.node(u, v, i, j, k)).second);
          }
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), 128u);
}

TEST(SuperGrid, SupernodeChainsAreSubcubes) {
  const SuperGrid sg(4, 2);  // p = 64 * 4 = 256
  const Subcube x = sg.super_x_chain(1, 0, 2, 3);
  EXPECT_EQ(x.size(), 4u);
  for (std::uint32_t i = 0; i < sg.sigma(); ++i) {
    EXPECT_TRUE(x.contains(sg.node(1, 0, i, 2, 3)));
  }
  const Subcube z = sg.super_z_chain(0, 1, 3, 1);
  for (std::uint32_t k = 0; k < sg.sigma(); ++k) {
    EXPECT_TRUE(z.contains(sg.node(0, 1, 3, 1, k)));
  }
}

TEST(SuperGrid, FaceRingsAreSingleLinks) {
  const SuperGrid sg(2, 4);
  const auto face = sg.face(1, 0, 1);
  const Hypercube hc(7);  // log2(128)
  for (std::uint32_t r = 0; r < sg.rho(); ++r) {
    for (std::uint32_t c = 0; c < sg.rho(); ++c) {
      EXPECT_TRUE(
          hc.are_neighbors(face.node(r, c), face.node(r, (c + 1) % sg.rho())));
      EXPECT_TRUE(
          hc.are_neighbors(face.node(r, c), face.node((r + 1) % sg.rho(), c)));
      EXPECT_TRUE(face.row_chain(r).contains(face.node(r, c)));
      EXPECT_TRUE(face.col_chain(c).contains(face.node(r, c)));
    }
  }
}

TEST(SuperGridSplit, CanonicalSplits) {
  // Largest sigma with an even remainder.
  EXPECT_EQ(default_super_split(8), (std::pair{2u, 1u}));
  EXPECT_EQ(default_super_split(32), (std::pair{2u, 2u}));
  EXPECT_EQ(default_super_split(64), (std::pair{4u, 1u}));
  EXPECT_EQ(default_super_split(128), (std::pair{2u, 4u}));
  EXPECT_EQ(default_super_split(256), (std::pair{4u, 2u}));
  EXPECT_EQ(default_super_split(1024), (std::pair{4u, 4u}));
  EXPECT_EQ(default_super_split(1), (std::pair{1u, 1u}));
  EXPECT_FALSE(default_super_split(2).has_value())
      << "2 is not sigma^3 * rho^2 for any powers of two";
  EXPECT_FALSE(default_super_split(24).has_value()) << "not a power of two";
}

}  // namespace
}  // namespace hcmm
