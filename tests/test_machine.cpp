// Tests for the Machine: schedule execution semantics (moves, combines,
// pre-round reads), port-model validation, and cost accounting — the round
// cost must be exactly t_s + t_w * (critical word count).

#include <gtest/gtest.h>

#include "hcmm/sim/machine.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

const Tag kTA = make_tag(1);
const Tag kTB = make_tag(2);
const Tag kTC = make_tag(3);

Machine one_port(std::uint32_t dim, CostParams p = {10.0, 2.0, 1.0}) {
  return Machine(Hypercube(dim), PortModel::kOnePort, p);
}
Machine multi_port(std::uint32_t dim, CostParams p = {10.0, 2.0, 1.0}) {
  return Machine(Hypercube(dim), PortModel::kMultiPort, p);
}

Schedule single(Transfer t) {
  Schedule s;
  s.rounds.push_back(Round{.transfers = {std::move(t)}});
  return s;
}

TEST(Machine, MovesPayload) {
  Machine m = one_port(2);
  m.store().put(0, kTA, {1.0, 2.0});
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .combine = false, .move_src = true}));
  EXPECT_FALSE(m.store().has(0, kTA));
  EXPECT_TRUE(m.store().has(1, kTA));
  EXPECT_EQ((*m.store().get(1, kTA))[1], 2.0);
}

TEST(Machine, CopiesPayloadWhenNotMoving) {
  Machine m = one_port(2);
  m.store().put(0, kTA, {5.0});
  m.run(single({.src = 0, .dst = 2, .tags = {kTA}, .combine = false, .move_src = false}));
  EXPECT_TRUE(m.store().has(0, kTA));
  EXPECT_TRUE(m.store().has(2, kTA));
}

TEST(Machine, CombineAddsAtDestination) {
  Machine m = one_port(1);
  m.store().put(0, kTA, {1.0, 2.0});
  m.store().put(1, kTA, {10.0, 20.0});
  m.run(single({.src = 1, .dst = 0, .tags = {kTA}, .combine = true, .move_src = true}));
  EXPECT_EQ((*m.store().get(0, kTA))[0], 11.0);
  EXPECT_EQ((*m.store().get(0, kTA))[1], 22.0);
  EXPECT_FALSE(m.store().has(1, kTA));
}

TEST(Machine, RoundReadsPreRoundState) {
  // Simultaneous ring shift 0 -> 1 -> 3 (a gray cycle prefix): node 1 must
  // forward its OLD item while receiving node 0's.
  Machine m = one_port(2);
  m.store().put(0, kTA, {0.5});
  m.store().put(1, kTB, {1.5});
  Schedule s;
  s.rounds.push_back(Round{
      .transfers = {{.src = 0, .dst = 1, .tags = {kTA}, .combine = false, .move_src = true},
                    {.src = 1, .dst = 3, .tags = {kTB}, .combine = false, .move_src = true}}});
  m.run(s);
  EXPECT_TRUE(m.store().has(1, kTA));
  EXPECT_TRUE(m.store().has(3, kTB));
  EXPECT_FALSE(m.store().has(0, kTA));
  EXPECT_FALSE(m.store().has(1, kTB));
}

TEST(Machine, RejectsNonNeighborTransfer) {
  Machine m = one_port(3);
  m.store().put(0, kTA, {1.0});
  EXPECT_THROW(m.run(single({.src = 0, .dst = 3, .tags = {kTA}})), CheckError);
}

TEST(Machine, RejectsMissingPayload) {
  Machine m = one_port(2);
  EXPECT_THROW(m.run(single({.src = 0, .dst = 1, .tags = {kTA}})), CheckError);
}

TEST(Machine, OnePortRejectsTwoSends) {
  Machine m = one_port(2);
  m.store().put(0, kTA, {1.0});
  m.store().put(0, kTB, {1.0});
  Schedule s;
  s.rounds.push_back(Round{
      .transfers = {{.src = 0, .dst = 1, .tags = {kTA}},
                    {.src = 0, .dst = 2, .tags = {kTB}}}});
  EXPECT_THROW(m.run(s), CheckError);
}

TEST(Machine, OnePortRejectsTwoReceives) {
  Machine m = one_port(2);
  m.store().put(1, kTA, {1.0});
  m.store().put(2, kTB, {1.0});
  Schedule s;
  s.rounds.push_back(Round{
      .transfers = {{.src = 1, .dst = 0, .tags = {kTA}},
                    {.src = 2, .dst = 0, .tags = {kTB}}}});
  EXPECT_THROW(m.run(s), CheckError);
}

TEST(Machine, OnePortAllowsSimultaneousSendAndReceive) {
  // The paper's model: an exchange costs one t_s + t_w*m, so send+receive
  // in the same round must be legal on one-port nodes.
  Machine m = one_port(1, {10.0, 2.0, 1.0});
  m.store().put(0, kTA, {1.0, 1.0, 1.0});
  m.store().put(1, kTB, {2.0, 2.0, 2.0});
  Schedule s;
  s.rounds.push_back(Round{
      .transfers = {{.src = 0, .dst = 1, .tags = {kTA}},
                    {.src = 1, .dst = 0, .tags = {kTB}}}});
  m.run(s);
  const auto totals = m.report().totals();
  EXPECT_EQ(totals.rounds, 1u);
  EXPECT_DOUBLE_EQ(totals.word_cost, 3.0);
  EXPECT_DOUBLE_EQ(totals.comm_time, 10.0 + 2.0 * 3.0);
}

TEST(Machine, MultiPortAllowsTwoSendsOnDistinctLinks) {
  Machine m = multi_port(2);
  m.store().put(0, kTA, {1.0, 1.0});
  m.store().put(0, kTB, {2.0});
  Schedule s;
  s.rounds.push_back(Round{
      .transfers = {{.src = 0, .dst = 1, .tags = {kTA}},
                    {.src = 0, .dst = 2, .tags = {kTB}}}});
  m.run(s);
  const auto totals = m.report().totals();
  // Ports run concurrently: the round's word cost is the largest link load.
  EXPECT_EQ(totals.rounds, 1u);
  EXPECT_DOUBLE_EQ(totals.word_cost, 2.0);
}

TEST(Machine, MultiPortRejectsTwoSendsOnSameLink) {
  Machine m = multi_port(2);
  m.store().put(0, kTA, {1.0});
  m.store().put(0, kTB, {1.0});
  Schedule s;
  s.rounds.push_back(Round{
      .transfers = {{.src = 0, .dst = 1, .tags = {kTA}},
                    {.src = 0, .dst = 1, .tags = {kTB}}}});
  EXPECT_THROW(m.run(s), CheckError);
}

TEST(Machine, RoundCostIsMaxOverNodes) {
  Machine m = one_port(2, {100.0, 1.0, 1.0});
  m.store().put(0, kTA, std::vector<double>(7, 1.0));
  m.store().put(3, kTB, std::vector<double>(4, 1.0));
  Schedule s;
  s.rounds.push_back(Round{
      .transfers = {{.src = 0, .dst = 1, .tags = {kTA}},
                    {.src = 3, .dst = 2, .tags = {kTB}}}});
  m.run(s);
  const auto totals = m.report().totals();
  EXPECT_EQ(totals.rounds, 1u);
  EXPECT_DOUBLE_EQ(totals.word_cost, 7.0);
  EXPECT_DOUBLE_EQ(totals.comm_time, 100.0 + 7.0);
  EXPECT_EQ(totals.messages, 2u);
  EXPECT_EQ(totals.link_words, 11u);
}

TEST(Machine, BundledTagsShareOneStartup) {
  Machine m = one_port(1, {100.0, 1.0, 1.0});
  m.store().put(0, kTA, std::vector<double>(3, 1.0));
  m.store().put(0, kTB, std::vector<double>(5, 1.0));
  m.run(single({.src = 0, .dst = 1, .tags = {kTA, kTB}}));
  const auto totals = m.report().totals();
  EXPECT_EQ(totals.rounds, 1u);
  EXPECT_DOUBLE_EQ(totals.word_cost, 8.0);
  EXPECT_EQ(totals.messages, 1u);
}

TEST(Machine, EmptyRoundsAreFree) {
  Machine m = one_port(2);
  Schedule s;
  s.rounds.resize(5);
  m.run(s);
  EXPECT_EQ(m.report().totals().rounds, 0u);
  EXPECT_DOUBLE_EQ(m.report().totals().comm_time, 0.0);
}

TEST(Machine, PhasesAccumulateSeparately) {
  Machine m = one_port(1, {10.0, 1.0, 1.0});
  m.store().put(0, kTA, {1.0});
  m.begin_phase("first");
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .combine = false, .move_src = true}));
  m.begin_phase("second");
  m.run(single({.src = 1, .dst = 0, .tags = {kTA}, .combine = false, .move_src = true}));
  const auto rep = m.report();
  ASSERT_EQ(rep.phases.size(), 2u);
  EXPECT_EQ(rep.phases[0].name, "first");
  EXPECT_EQ(rep.phases[0].rounds, 1u);
  EXPECT_EQ(rep.phases[1].rounds, 1u);
}

TEST(Machine, ChargeCompute) {
  Machine m = one_port(2, {10.0, 1.0, 0.5});
  const std::pair<NodeId, std::uint64_t> flops[] = {{0, 100}, {1, 400}, {2, 50}};
  m.charge_compute(flops);
  const auto totals = m.report().totals();
  EXPECT_EQ(totals.flops, 400u);
  EXPECT_DOUBLE_EQ(totals.compute_time, 200.0);
  EXPECT_DOUBLE_EQ(totals.comm_time, 0.0);
}

TEST(Machine, ResetStatsClearsPhasesAndPeaks) {
  Machine m = one_port(1);
  m.store().put(0, kTA, std::vector<double>(100, 0.0));
  m.store().erase(0, kTA);
  m.store().put(0, kTC, {1.0});
  m.run(single({.src = 0, .dst = 1, .tags = {kTC}}));
  m.reset_stats();
  EXPECT_TRUE(m.report().phases.empty());
  EXPECT_EQ(m.store().peak_words(0), 1u);
}

TEST(Machine, ReportToStringMentionsPhases) {
  Machine m = one_port(1);
  m.begin_phase("align");
  m.store().put(0, kTA, {1.0});
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}}));
  const std::string text = m.report().to_string();
  EXPECT_NE(text.find("align"), std::string::npos);
  EXPECT_NE(text.find("one-port"), std::string::npos);
}

TEST(LinkAccounting, OffByDefaultAndRecordsWhenOn) {
  Machine m = one_port(2);
  m.store().put(0, kTA, std::vector<double>(5, 1.0));
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}}));
  EXPECT_TRUE(m.link_loads().empty()) << "accounting defaults off";

  m.set_link_accounting(true);
  m.run(single({.src = 1, .dst = 3, .tags = {kTA}, .combine = false,
                .move_src = true}));
  m.run(single({.src = 3, .dst = 1, .tags = {kTA}, .combine = false,
                .move_src = true}));
  const auto loads = m.link_loads();
  ASSERT_EQ(loads.size(), 2u) << "directed links counted separately";
  EXPECT_EQ(loads[0].words, 5u);
  EXPECT_EQ(loads[0].messages, 1u);
}

TEST(LinkAccounting, SummarizeBalance) {
  const LinkLoad loads[] = {{0, 1, 30, 1}, {1, 0, 10, 1}, {0, 2, 20, 2}};
  const auto bal = summarize_links(loads, 4);  // 4 undirected = 8 directed
  EXPECT_EQ(bal.links_used, 3u);
  EXPECT_EQ(bal.max_words, 30u);
  EXPECT_DOUBLE_EQ(bal.mean_words, 20.0);
  EXPECT_DOUBLE_EQ(bal.imbalance, 1.5);
  EXPECT_DOUBLE_EQ(bal.coverage, 3.0 / 8.0);
  EXPECT_EQ(summarize_links({}, 4).links_used, 0u);
}

TEST(LinkAccounting, ClearedByResetStats) {
  Machine m = one_port(2);
  m.set_link_accounting(true);
  m.store().put(0, kTA, {1.0});
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}}));
  EXPECT_FALSE(m.link_loads().empty());
  m.reset_stats();
  EXPECT_TRUE(m.link_loads().empty());
}

TEST(AsyncMakespan, DependentChainEqualsSync) {
  // 0 -> 1 -> 3: round 2 really needs round 1; async == sync.
  Machine m = one_port(2, {10.0, 1.0, 1.0});
  m.store().put(0, kTA, std::vector<double>(4, 1.0));
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}, .combine = false,
                .move_src = true}));
  m.run(single({.src = 1, .dst = 3, .tags = {kTA}, .combine = false,
                .move_src = true}));
  const auto rep = m.report();
  EXPECT_DOUBLE_EQ(rep.async_makespan, rep.totals().comm_time);
}

TEST(AsyncMakespan, IndependentRoundsPipeline) {
  // Two independent transfers forced into separate rounds by the one-port
  // model (same receiver): async overlaps nothing (port conflict), but an
  // unrelated pair elsewhere runs concurrently with both.
  Machine m = one_port(3, {10.0, 1.0, 1.0});
  m.store().put(1, kTA, std::vector<double>(8, 1.0));
  m.store().put(4, kTB, std::vector<double>(8, 1.0));
  // Round 1: 1 -> 0.  Round 2: 4 -> 0 would conflict at 0 only as receiver;
  // schedule them sequentially as a router would.
  m.run(single({.src = 1, .dst = 0, .tags = {kTA}}));
  m.run(single({.src = 4, .dst = 0, .tags = {kTB}}));
  const auto rep = m.report();
  // Async cannot beat this either (same in-port serializes both)...
  EXPECT_DOUBLE_EQ(rep.async_makespan, rep.totals().comm_time);

  // ...but a transfer on disjoint nodes overlaps fully.
  Machine m2 = one_port(3, {10.0, 1.0, 1.0});
  m2.store().put(1, kTA, std::vector<double>(8, 1.0));
  m2.store().put(4, kTB, std::vector<double>(8, 1.0));
  m2.run(single({.src = 1, .dst = 0, .tags = {kTA}}));
  m2.run(single({.src = 4, .dst = 6, .tags = {kTB}}));
  const auto rep2 = m2.report();
  EXPECT_DOUBLE_EQ(rep2.async_makespan, rep2.totals().comm_time / 2.0)
      << "independent transfers overlap in the DAG";
}

TEST(AsyncMakespan, ComputeBarriersTheDag) {
  Machine m = one_port(2, {10.0, 1.0, 2.0});
  m.store().put(0, kTA, std::vector<double>(5, 1.0));
  m.run(single({.src = 0, .dst = 1, .tags = {kTA}}));
  const std::pair<NodeId, std::uint64_t> flops[] = {{1, 100}};
  m.charge_compute(flops);
  m.store().put(1, kTB, std::vector<double>(5, 1.0));
  m.run(single({.src = 1, .dst = 3, .tags = {kTB}}));
  const auto rep = m.report();
  // 15 (first transfer) + 200 (compute floor) + 15 (second transfer).
  EXPECT_DOUBLE_EQ(rep.async_makespan, 15.0 + 200.0 + 15.0);
}

}  // namespace
}  // namespace hcmm
