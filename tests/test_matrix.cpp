// Tests for the dense-matrix layer: storage, block ops, the gemm kernels
// (tiled and threaded validated against the naive oracle), and generators.

#include <gtest/gtest.h>

#include "hcmm/matrix/generate.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/matrix.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/support/thread_pool.hpp"

namespace hcmm {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, AdoptData) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), CheckError);
}

TEST(Matrix, BlockExtractInsertRoundTrip) {
  const Matrix m = index_matrix(6, 8);
  const Matrix b = m.block(2, 3, 3, 4);
  ASSERT_EQ(b.rows(), 3u);
  ASSERT_EQ(b.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(b(r, c), m(2 + r, 3 + c));
    }
  }
  Matrix copy(6, 8);
  copy.set_block(2, 3, b);
  EXPECT_EQ(copy(2, 3), m(2, 3));
  EXPECT_EQ(copy(4, 6), m(4, 6));
  EXPECT_EQ(copy(0, 0), 0.0);
}

TEST(Matrix, BlockBoundsChecked) {
  const Matrix m(4, 4);
  EXPECT_THROW(m.block(2, 2, 3, 1), CheckError);
  Matrix t(4, 4);
  EXPECT_THROW(t.set_block(3, 0, Matrix(2, 2)), CheckError);
}

TEST(Matrix, AddBlockAccumulates) {
  Matrix m(4, 4);
  Matrix b(2, 2, {1, 2, 3, 4});
  m.add_block(1, 1, b);
  m.add_block(1, 1, b);
  EXPECT_EQ(m(1, 1), 2.0);
  EXPECT_EQ(m(2, 2), 8.0);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, PlusEquals) {
  Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {10, 20, 30, 40});
  a += b;
  EXPECT_EQ(a(1, 1), 44.0);
  Matrix c(3, 2);
  EXPECT_THROW(c += b, CheckError);
}

TEST(Matrix, Transposed) {
  const Matrix m = index_matrix(2, 3);
  const Matrix t = m.transposed();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(t(c, r), m(r, c));
  }
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix a = random_matrix(7, 7, 1);
  const Matrix c = multiply_naive(a, Matrix::identity(7));
  EXPECT_LE(max_abs_diff(a, c), 0.0);
}

TEST(Matrix, Norms) {
  const Matrix m(2, 2, {3, 0, 0, 4});
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
  EXPECT_TRUE(approx_equal(m, m, 0.0));
  const Matrix n(2, 2, {3, 0, 0, 4.5});
  EXPECT_FALSE(approx_equal(m, n, 0.4));
  EXPECT_TRUE(approx_equal(m, n, 0.6));
  EXPECT_FALSE(approx_equal(m, Matrix(2, 3), 10.0));
}

TEST(Gemm, NaiveKnownProduct) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = multiply_naive(a, b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Gemm, InnerDimChecked) {
  EXPECT_THROW(multiply_naive(Matrix(2, 3), Matrix(2, 3)), CheckError);
  Matrix c(2, 2);
  EXPECT_THROW(gemm_accumulate(Matrix(2, 3), Matrix(3, 3), c), CheckError);
}

class GemmSizes : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, TiledMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(k), 11);
  const Matrix b = random_matrix(static_cast<std::size_t>(k),
                                 static_cast<std::size_t>(n), 13);
  EXPECT_LE(max_abs_diff(multiply_tiled(a, b), multiply_naive(a, b)), 1e-12);
}

TEST_P(GemmSizes, ThreadedMatchesNaive) {
  const auto [m, k, n] = GetParam();
  ThreadPool pool(3);
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(k), 17);
  const Matrix b = random_matrix(static_cast<std::size_t>(k),
                                 static_cast<std::size_t>(n), 19);
  EXPECT_LE(max_abs_diff(multiply_threaded(a, b, pool), multiply_naive(a, b)),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 5, 1},
                    std::tuple{5, 1, 5}, std::tuple{8, 8, 8},
                    std::tuple{17, 3, 29}, std::tuple{64, 64, 64},
                    std::tuple{65, 70, 67}, std::tuple{128, 32, 16}));

TEST(Gemm, AccumulateAddsIntoExisting) {
  const Matrix a(2, 2, {1, 0, 0, 1});
  const Matrix b(2, 2, {5, 6, 7, 8});
  Matrix c(2, 2, {100, 100, 100, 100});
  gemm_accumulate(a, b, c);
  EXPECT_EQ(c(0, 0), 105.0);
  EXPECT_EQ(c(1, 1), 108.0);
}

TEST(Gemm, FlopsCount) {
  EXPECT_EQ(gemm_flops(2, 3, 4), 24u);
  EXPECT_EQ(gemm_flops(0, 3, 4), 0u);
}

TEST(Generate, RandomIsReproducibleAndBounded) {
  const Matrix a = random_matrix(20, 20, 7);
  const Matrix b = random_matrix(20, 20, 7);
  EXPECT_LE(max_abs_diff(a, b), 0.0);
  for (const double v : a.data()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
  const Matrix c = random_matrix(20, 20, 8);
  EXPECT_GT(max_abs_diff(a, c), 0.0);
}

TEST(Generate, IndexMatrixValuesIdentifyPositions) {
  const Matrix m = index_matrix(3, 4);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(2, 3), 11.0);
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(Generate, SpdIsSymmetricDiagonallyDominant) {
  const std::size_t n = 16;
  const Matrix m = spd_matrix(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0;
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(m(i, j), m(j, i));
      if (i != j) off += std::abs(m(i, j));
    }
    EXPECT_GT(m(i, i), off);
  }
}

TEST(Generate, StochasticRowsSumToOne) {
  const Matrix m = stochastic_matrix(12, 5);
  for (std::size_t i = 0; i < 12; ++i) {
    double sum = 0;
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_GT(m(i, j), 0.0);
      sum += m(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace hcmm
