// Tests for the arbitrary-size frontend: zero-padding to the algorithm's
// granularity must reproduce the exact product for awkward sizes.

#include <gtest/gtest.h>

#include "hcmm/algo/padded.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

using algo::AlgoId;

TEST(Padded, SizeProbing) {
  const auto cannon = algo::make_algorithm(AlgoId::kCannon);
  EXPECT_EQ(algo::padded_size(*cannon, 17, 16), 20u) << "next multiple of 4";
  EXPECT_EQ(algo::padded_size(*cannon, 16, 16), 16u) << "already applicable";
  EXPECT_EQ(algo::padded_size(*cannon, 17, 8), 0u) << "8 is not a square";

  const auto all3d = algo::make_algorithm(AlgoId::kAll3D);
  EXPECT_EQ(algo::padded_size(*all3d, 17, 64), 32u) << "next multiple of 16";
}

class PaddedRun
    : public testing::TestWithParam<std::tuple<AlgoId, std::size_t>> {};

TEST_P(PaddedRun, AwkwardSizesProduceExactProducts) {
  const auto [id, n] = GetParam();
  const auto alg = algo::make_algorithm(id);
  const std::uint32_t p = 64;
  const Matrix a = random_matrix(n, n, 101 + n);
  const Matrix b = random_matrix(n, n, 202 + n);
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    if (!alg->supports(port)) continue;
    Machine machine(Hypercube::with_nodes(p), port, CostParams{150, 3, 1});
    const auto r = algo::padded_multiply(*alg, a, b, machine);
    ASSERT_EQ(r.c.rows(), n);
    ASSERT_EQ(r.c.cols(), n);
    EXPECT_LE(max_abs_diff(r.c, multiply_naive(a, b)),
              1e-10 * static_cast<double>(n))
        << alg->name() << " n=" << n << " " << to_string(port);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaddedRun,
    testing::Combine(testing::Values(AlgoId::kCannon, AlgoId::kSimple,
                                     AlgoId::kDiag3D, AlgoId::kAll3D,
                                     AlgoId::kBerntsen, AlgoId::kHJE),
                     testing::Values(std::size_t{17}, std::size_t{30},
                                     std::size_t{33}, std::size_t{47})),
    [](const testing::TestParamInfo<std::tuple<AlgoId, std::size_t>>& pinfo) {
      std::string name = algo::to_string(std::get<0>(pinfo.param));
      std::erase_if(name, [](char ch) { return ch == '(' || ch == ')'; });
      for (auto& ch : name) {
        if (ch == ' ' || ch == '-') ch = '_';
      }
      return name + "_n" + std::to_string(std::get<1>(pinfo.param));
    });

TEST(Padded, ThrowsWhenNoSizeExists) {
  const auto cannon = algo::make_algorithm(AlgoId::kCannon);
  const Matrix a = random_matrix(4, 4, 1);
  Machine m(Hypercube::with_nodes(8), PortModel::kOnePort,
            CostParams{10, 1, 1});  // 8 is not a square grid
  EXPECT_THROW((void)algo::padded_multiply(*cannon, a, a, m), CheckError);
}

TEST(Padded, RectangularInputsRejected) {
  const auto cannon = algo::make_algorithm(AlgoId::kCannon);
  Machine m(Hypercube::with_nodes(16), PortModel::kOnePort,
            CostParams{10, 1, 1});
  const Matrix a = random_matrix(4, 6, 1);
  const Matrix b = random_matrix(6, 4, 2);
  EXPECT_THROW((void)algo::padded_multiply(*cannon, a, b, m), CheckError);
}

}  // namespace
}  // namespace hcmm
