// Tests for the machine-readable report exports.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>

#include "hcmm/algo/api.hpp"
#include "hcmm/analysis/rules.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/report_io.hpp"

namespace hcmm {
namespace {

SimReport sample_report() {
  const auto alg = algo::make_algorithm(algo::AlgoId::kDiag3D);
  Machine m(Hypercube::with_nodes(64), PortModel::kOnePort,
            CostParams{150, 3, 1});
  const Matrix a = random_matrix(32, 32, 1);
  return alg->run(a, a, m).report;
}

TEST(ReportIo, CsvHasHeaderAndTotalRow) {
  const std::string csv = report_csv(sample_report());
  EXPECT_EQ(csv.find("phase,a_ts,b_tw,messages,link_words,flops,comm_time,"
                     "compute_time,retries,reroutes,extra_hops,fault_startups,"
                     "fault_word_cost,fault_delay,checkpoints,checkpoint_cost,"
                     "silent_corruptions,abft_detected,abft_corrected,"
                     "words_copied,words_aliased,combines_in_place,"
                     "combines_copied\n"),
            0u);
  EXPECT_NE(csv.find("\"TOTAL\","), std::string::npos);
  EXPECT_NE(csv.find("\"p2p B\","), std::string::npos);
  // One line per phase + header + total.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, static_cast<long>(sample_report().phases.size()) + 2);
}

TEST(ReportIo, JsonRoundTripFields) {
  const auto rep = sample_report();
  const std::string json = report_json(rep);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"port\": \"one-port\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 150"), std::string::npos);
  EXPECT_NE(json.find("\"phases\": ["), std::string::npos);
  EXPECT_NE(json.find("\"totals\": "), std::string::npos);
  EXPECT_NE(json.find("\"peak_words_total\": " +
                      std::to_string(rep.peak_words_total)),
            std::string::npos);
}

TEST(ReportIo, JsonEscapesQuotes) {
  SimReport rep;
  rep.phases.push_back(PhaseStats{.name = "odd \"name\""});
  const std::string json = report_json(rep);
  EXPECT_NE(json.find("odd \\\"name\\\""), std::string::npos);
}

TEST(ReportIo, EmptyReport) {
  SimReport rep;
  EXPECT_NE(report_csv(rep).find("TOTAL"), std::string::npos);
  EXPECT_NE(report_json(rep).find("\"phases\": []"), std::string::npos);
  EXPECT_NE(report_json(rep).find("\"fault_events\": []"), std::string::npos);
}

// Hand-built report with resilience counters and a located fault event:
// every new field must survive both exports.
TEST(ReportIo, FaultFieldsRoundTrip) {
  SimReport rep;
  PhaseStats ph{.name = "shift A"};
  ph.rounds = 4;
  ph.word_cost = 16.0;
  ph.retries = 3;
  ph.reroutes = 2;
  ph.extra_hops = 5;
  ph.fault_startups = 7;
  ph.fault_word_cost = 12.5;
  ph.fault_delay = 400.25;
  rep.phases.push_back(ph);
  rep.fault_events.push_back(fault::FaultEvent{
      .kind = fault::FaultKind::kDrop,
      .src = 3,
      .dst = 7,
      .round = 11,
      .attempt = 2,
      .detail = "injected \"drop\""});

  const std::string csv = report_csv(rep);
  // Phase row: the six resilience columns follow compute_time in order,
  // then the five ABFT/checkpoint columns (all zero here).
  EXPECT_NE(csv.find("\"shift A\",4,16,"), std::string::npos);
  EXPECT_NE(csv.find(",3,2,5,7,12.5,400.25,0,0,0,0,0,0,0,0,0\n"),
            std::string::npos);

  const std::string json = report_json(rep);
  EXPECT_NE(json.find("\"retries\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"reroutes\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"extra_hops\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"fault_startups\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"fault_word_cost\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"fault_delay\": 400.25"), std::string::npos);
  EXPECT_NE(json.find("\"fault_events\": [{\"kind\": \"drop\", \"src\": 3, "
                      "\"dst\": 7, \"round\": 11, \"attempt\": 2, "
                      "\"detail\": \"injected \\\"drop\\\"\"}]"),
            std::string::npos);
}

// Every FaultKind enumerator must print a real name — an enumerator added
// without a to_string case would fall through to "?" and make every chaos
// diagnosis useless.
TEST(ReportIo, FaultKindToStringIsExhaustive) {
  using fault::FaultKind;
  const std::pair<FaultKind, const char*> expected[] = {
      {FaultKind::kNone, "none"},
      {FaultKind::kDrop, "drop"},
      {FaultKind::kCorrupt, "corrupt"},
      {FaultKind::kSpike, "latency-spike"},
      {FaultKind::kReroute, "reroute"},
      {FaultKind::kNodeDeath, "node-death"},
      {FaultKind::kRetryExhausted, "retry-exhausted"},
      {FaultKind::kUnroutable, "unroutable"},
      {FaultKind::kHostless, "hostless"},
      {FaultKind::kSilentCorrupt, "silent-corrupt"},
      {FaultKind::kMidRunDeath, "mid-run-death"},
      {FaultKind::kAbftUncorrectable, "abft-uncorrectable"},
      {FaultKind::kDetourFault, "detour-fault"},
      {FaultKind::kReplayDeath, "replay-death"},
      {FaultKind::kCheckpointCorrupt, "checkpoint-corrupt"},
      {FaultKind::kBudgetExhausted, "budget-exhausted"},
  };
  for (const auto& [kind, name] : expected) {
    EXPECT_STREQ(fault::to_string(kind), name);
    EXPECT_STRNE(fault::to_string(kind), "?");
  }
}

// A fault-event detail full of quotes, backslashes, newlines, and other
// control characters must come out of report_json as valid JSON.
TEST(ReportIo, JsonEscapesControlCharactersInDetail) {
  SimReport rep;
  rep.fault_events.push_back(fault::FaultEvent{
      .kind = fault::FaultKind::kCorrupt,
      .src = 1,
      .dst = 2,
      .round = 3,
      .attempt = 1,
      .detail = "line1\nline2\t\"quoted\" back\\slash\r\x01"});
  const std::string json = report_json(rep);
  EXPECT_NE(json.find("line1\\nline2\\t\\\"quoted\\\" "
                      "back\\\\slash\\r\\u0001"),
            std::string::npos);
  // No raw control characters may survive in the output.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

// ABFT events and counters must survive the JSON export, with kNoIndex
// coordinates mapped to null.
TEST(ReportIo, AbftFieldsRoundTrip) {
  SimReport rep;
  PhaseStats ph{.name = "abft verify"};
  ph.checkpoints = 2;
  ph.checkpoint_cost = 450.5;
  ph.silent_corruptions = 1;
  ph.abft_detected = 3;
  ph.abft_corrected = 2;
  rep.phases.push_back(ph);
  rep.recoveries = 1;
  rep.restarts = 2;
  rep.abft_events.push_back(abft::AbftEvent{
      .kind = abft::EventKind::kRowCorrected,
      .row = 5,
      .col = abft::AbftEvent::kNoIndex,
      .magnitude = 3.25,
      .detail = "residues"});

  const std::string csv = report_csv(rep);
  EXPECT_NE(csv.find(",2,450.5,1,3,2,0,0,0,0\n"), std::string::npos);

  const std::string json = report_json(rep);
  EXPECT_NE(json.find("\"checkpoints\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint_cost\": 450.5"), std::string::npos);
  EXPECT_NE(json.find("\"silent_corruptions\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"abft_detected\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"abft_corrected\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"recoveries\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"restarts\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"abft_events\": [{\"kind\": \"row-corrected\", "
                      "\"row\": 5, \"col\": null, \"magnitude\": 3.25, "
                      "\"detail\": \"residues\"}]"),
            std::string::npos);
}

// ---- diagnostic exports ----------------------------------------------------

analysis::Diagnostic diag(const char* pass, const char* code,
                          const char* message, const char* hint,
                          std::size_t round = analysis::kNoLoc,
                          std::size_t transfer = analysis::kNoLoc) {
  analysis::Diagnostic d;
  d.severity = analysis::Severity::kError;
  d.pass = pass;
  d.code = code;
  d.message = message;
  d.hint = hint;
  d.round = round;
  d.transfer = transfer;
  return d;
}

// The semantic and Table 2 diagnostic kinds must survive every export:
// JSON, CSV and SARIF, located and locationless.
TEST(ReportIo, SemanticDiagnosticsRoundTrip) {
  analysis::DiagnosticList dl;
  dl.add(diag("semantic", "semantic.missing-product",
              "product cell (0, 4, 8) never reached C", "check the collects",
              12, 3));
  dl.add(diag("semantic", "semantic.duplicate-product",
              "product cell (1, 2, 3) reached C twice", "", 20));
  dl.add(diag("semantic", "semantic.operand-mismatch",
              "A operand pieces leave a k-gap", "", 7, 0));
  dl.add(diag("semantic", "semantic.misplaced-product",
              "term (0,0)x(8,8) landed at C(8, 0)", "", 31));
  dl.add(diag("table2", "cost.table2-divergence",
              "start-ups 12 diverge from Table 2's 15", "diff the rounds"));

  const std::string json = diagnostics_json(dl);
  EXPECT_NE(json.find("\"errors\": 5"), std::string::npos);
  for (const char* code :
       {"semantic.missing-product", "semantic.duplicate-product",
        "semantic.operand-mismatch", "semantic.misplaced-product",
        "cost.table2-divergence"}) {
    EXPECT_NE(json.find("\"code\": \"" + std::string(code) + "\""),
              std::string::npos)
        << code;
  }
  EXPECT_NE(json.find("\"round\": 12, \"transfer\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"round\": 20, \"transfer\": null"),
            std::string::npos);
  // The locationless table2 finding emits null for both.
  EXPECT_NE(json.find("\"round\": null, \"transfer\": null"),
            std::string::npos);

  const std::string csv = diagnostics_csv(dl);
  EXPECT_EQ(csv.find("severity,pass,code,round,transfer,message,hint\n"), 0u);
  EXPECT_NE(csv.find("error,\"semantic\",\"semantic.missing-product\",12,3,"
                     "\"product cell (0, 4, 8) never reached C\","
                     "\"check the collects\"\n"),
            std::string::npos);
  EXPECT_NE(csv.find("error,\"table2\",\"cost.table2-divergence\",,,"),
            std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);
}

// Control characters in messages must not break row/field framing in
// either export (the JSON path uses \u escapes, the CSV path \xNN).
TEST(ReportIo, DiagnosticEscapingControlCharacters) {
  analysis::DiagnosticList dl;
  dl.add(diag("semantic", "semantic.operand-mismatch",
              "line one\nline two\twith \"quotes\"", "hint\x01" "end"));
  const std::string json = diagnostics_json(dl);
  EXPECT_NE(json.find("line one\\nline two\\twith \\\"quotes\\\""),
            std::string::npos);
  EXPECT_NE(json.find("hint\\u0001end"), std::string::npos);

  const std::string csv = diagnostics_csv(dl);
  EXPECT_NE(csv.find("\"line one\\x0aline two\\x09with \"\"quotes\"\"\""),
            std::string::npos);
  EXPECT_NE(csv.find("\"hint\\x01end\""), std::string::npos);
  // One header + one row: embedded newlines must not add physical rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

// Every exported rule must carry its registered SARIF metadata.
TEST(ReportIo, SarifCarriesRuleMetadata) {
  analysis::DiagnosticList dl;
  dl.add(diag("semantic", "semantic.missing-product", "cell never reached C",
              "", 4, 1));
  dl.add(diag("table2", "cost.table2-divergence", "band exceeded", ""));
  const std::string sarif = sarif_json(dl, {"DNS on 64 nodes", "DNS"});
  EXPECT_NE(sarif.find("\"id\": \"semantic.missing-product\", "
                       "\"name\": \"SemanticMissingProduct\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"helpUri\": "
                       "\"docs/ANALYSIS.md#semantic-dataflow-certification\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"helpUri\": "
                       "\"docs/ANALYSIS.md#table-2-closed-form-audit\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"shortDescription\""), std::string::npos);
  EXPECT_NE(sarif.find("DNS on 64 nodes/round 4/transfer 1"),
            std::string::npos);
}

// ---- rule registry ---------------------------------------------------------

// Exhaustiveness both ways: every diagnostic-code literal in the source
// tree must be registered (so SARIF exports carry metadata for it), and
// every registered rule must be emitted somewhere (so the registry cannot
// accumulate dead entries).  The registry file itself is excluded from the
// scan — its own literals must not satisfy the "emitted somewhere" check.
TEST(RuleRegistry, SourceCodesAndRegistryMatchExactly) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(HCMM_SOURCE_DIR) / "src";
  ASSERT_TRUE(fs::exists(src));
  const std::regex code_re(
      "\"((topology|port|dataflow|alias|race|plane|cost|semantic)"
      "\\.[a-z0-9-]+)\"");
  std::set<std::string> emitted;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    const std::string ext = path.extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    if (path.filename() == "rules.cpp") continue;
    std::ifstream f(path);
    const std::string text((std::istreambuf_iterator<char>(f)),
                           std::istreambuf_iterator<char>());
    for (auto it = std::sregex_iterator(text.begin(), text.end(), code_re);
         it != std::sregex_iterator(); ++it) {
      emitted.insert((*it)[1].str());
    }
  }
  ASSERT_GE(emitted.size(), 28u);  // the scan actually found the passes

  for (const std::string& code : emitted) {
    EXPECT_NE(analysis::find_rule(code), nullptr)
        << code << " is emitted but has no SARIF rule metadata — register "
                   "it in src/analysis/rules.cpp";
  }
  std::string_view prev;
  for (const analysis::RuleMeta& r : analysis::all_rules()) {
    EXPECT_TRUE(emitted.count(std::string(r.id)) != 0)
        << r.id << " is registered but no pass emits it";
    EXPECT_LT(prev, r.id) << "registry must stay sorted and duplicate-free";
    prev = r.id;
    EXPECT_FALSE(r.name.empty()) << r.id;
    EXPECT_FALSE(r.short_desc.empty()) << r.id;
    EXPECT_EQ(r.help_uri.rfind("docs/ANALYSIS.md#", 0), 0u) << r.id;
  }
}

}  // namespace
}  // namespace hcmm

