// Tests for the machine-readable report exports.

#include <gtest/gtest.h>

#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/report_io.hpp"

namespace hcmm {
namespace {

SimReport sample_report() {
  const auto alg = algo::make_algorithm(algo::AlgoId::kDiag3D);
  Machine m(Hypercube::with_nodes(64), PortModel::kOnePort,
            CostParams{150, 3, 1});
  const Matrix a = random_matrix(32, 32, 1);
  return alg->run(a, a, m).report;
}

TEST(ReportIo, CsvHasHeaderAndTotalRow) {
  const std::string csv = report_csv(sample_report());
  EXPECT_EQ(csv.find("phase,a_ts,b_tw,messages,link_words,flops,comm_time,"
                     "compute_time\n"),
            0u);
  EXPECT_NE(csv.find("\"TOTAL\","), std::string::npos);
  EXPECT_NE(csv.find("\"p2p B\","), std::string::npos);
  // One line per phase + header + total.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, static_cast<long>(sample_report().phases.size()) + 2);
}

TEST(ReportIo, JsonRoundTripFields) {
  const auto rep = sample_report();
  const std::string json = report_json(rep);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"port\": \"one-port\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 150"), std::string::npos);
  EXPECT_NE(json.find("\"phases\": ["), std::string::npos);
  EXPECT_NE(json.find("\"totals\": "), std::string::npos);
  EXPECT_NE(json.find("\"peak_words_total\": " +
                      std::to_string(rep.peak_words_total)),
            std::string::npos);
}

TEST(ReportIo, JsonEscapesQuotes) {
  SimReport rep;
  rep.phases.push_back(PhaseStats{.name = "odd \"name\""});
  const std::string json = report_json(rep);
  EXPECT_NE(json.find("odd \\\"name\\\""), std::string::npos);
}

TEST(ReportIo, EmptyReport) {
  SimReport rep;
  EXPECT_NE(report_csv(rep).find("TOTAL"), std::string::npos);
  EXPECT_NE(report_json(rep).find("\"phases\": []"), std::string::npos);
}

}  // namespace
}  // namespace hcmm
