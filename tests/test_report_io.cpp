// Tests for the machine-readable report exports.

#include <gtest/gtest.h>

#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/report_io.hpp"

namespace hcmm {
namespace {

SimReport sample_report() {
  const auto alg = algo::make_algorithm(algo::AlgoId::kDiag3D);
  Machine m(Hypercube::with_nodes(64), PortModel::kOnePort,
            CostParams{150, 3, 1});
  const Matrix a = random_matrix(32, 32, 1);
  return alg->run(a, a, m).report;
}

TEST(ReportIo, CsvHasHeaderAndTotalRow) {
  const std::string csv = report_csv(sample_report());
  EXPECT_EQ(csv.find("phase,a_ts,b_tw,messages,link_words,flops,comm_time,"
                     "compute_time,retries,reroutes,extra_hops,fault_startups,"
                     "fault_word_cost,fault_delay\n"),
            0u);
  EXPECT_NE(csv.find("\"TOTAL\","), std::string::npos);
  EXPECT_NE(csv.find("\"p2p B\","), std::string::npos);
  // One line per phase + header + total.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, static_cast<long>(sample_report().phases.size()) + 2);
}

TEST(ReportIo, JsonRoundTripFields) {
  const auto rep = sample_report();
  const std::string json = report_json(rep);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"port\": \"one-port\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 150"), std::string::npos);
  EXPECT_NE(json.find("\"phases\": ["), std::string::npos);
  EXPECT_NE(json.find("\"totals\": "), std::string::npos);
  EXPECT_NE(json.find("\"peak_words_total\": " +
                      std::to_string(rep.peak_words_total)),
            std::string::npos);
}

TEST(ReportIo, JsonEscapesQuotes) {
  SimReport rep;
  rep.phases.push_back(PhaseStats{.name = "odd \"name\""});
  const std::string json = report_json(rep);
  EXPECT_NE(json.find("odd \\\"name\\\""), std::string::npos);
}

TEST(ReportIo, EmptyReport) {
  SimReport rep;
  EXPECT_NE(report_csv(rep).find("TOTAL"), std::string::npos);
  EXPECT_NE(report_json(rep).find("\"phases\": []"), std::string::npos);
  EXPECT_NE(report_json(rep).find("\"fault_events\": []"), std::string::npos);
}

// Hand-built report with resilience counters and a located fault event:
// every new field must survive both exports.
TEST(ReportIo, FaultFieldsRoundTrip) {
  SimReport rep;
  PhaseStats ph{.name = "shift A"};
  ph.rounds = 4;
  ph.word_cost = 16.0;
  ph.retries = 3;
  ph.reroutes = 2;
  ph.extra_hops = 5;
  ph.fault_startups = 7;
  ph.fault_word_cost = 12.5;
  ph.fault_delay = 400.25;
  rep.phases.push_back(ph);
  rep.fault_events.push_back(fault::FaultEvent{
      .kind = fault::FaultKind::kDrop,
      .src = 3,
      .dst = 7,
      .round = 11,
      .attempt = 2,
      .detail = "injected \"drop\""});

  const std::string csv = report_csv(rep);
  // Phase row: the six resilience columns follow compute_time in order.
  EXPECT_NE(csv.find("\"shift A\",4,16,"), std::string::npos);
  EXPECT_NE(csv.find(",3,2,5,7,12.5,400.25\n"), std::string::npos);

  const std::string json = report_json(rep);
  EXPECT_NE(json.find("\"retries\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"reroutes\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"extra_hops\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"fault_startups\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"fault_word_cost\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"fault_delay\": 400.25"), std::string::npos);
  EXPECT_NE(json.find("\"fault_events\": [{\"kind\": \"drop\", \"src\": 3, "
                      "\"dst\": 7, \"round\": 11, \"attempt\": 2, "
                      "\"detail\": \"injected \\\"drop\\\"\"}]"),
            std::string::npos);
}

}  // namespace
}  // namespace hcmm
