// Tests for the machine-level point-to-point layer (coll::prep_route):
// multi-port multipath splitting over rotated edge-disjoint paths, the
// small-message fallback, and the costs the paper charges for the 3DD/DNS
// first phases.

#include <gtest/gtest.h>

#include "hcmm/coll/route.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/support/prng.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm {
namespace {

TEST(PrepRoute, OnePortMatchesPlainRouting) {
  const Hypercube hc(4);
  Machine m(hc, PortModel::kOnePort, {1.0, 1.0, 1.0});
  m.store().put(0, make_tag(1), std::vector<double>(12, 2.5));
  const RouteRequest reqs[] = {{.src = 0, .dst = 0b1110, .tags = {make_tag(1)}}};
  coll::op_route(m, reqs);
  EXPECT_TRUE(m.store().has(0b1110, make_tag(1)));
  const auto t = m.report().totals();
  EXPECT_EQ(t.rounds, 3u);
  EXPECT_DOUBLE_EQ(t.word_cost, 36.0) << "3 hops x 12 words, store-and-forward";
}

TEST(PrepRoute, MultiPortSplitsAcrossDisjointPaths) {
  // One message, distance 3, 12 words: 3 parts of 4 words pipelined over 3
  // rotated paths -> 3 rounds of 4 words each: b = 12, not 36.
  const Hypercube hc(4);
  Machine m(hc, PortModel::kMultiPort, {1.0, 1.0, 1.0});
  Prng rng(5);
  std::vector<double> payload(12);
  for (auto& v : payload) v = rng.next_double();
  m.store().put(0, make_tag(1), payload);
  const RouteRequest reqs[] = {{.src = 0, .dst = 0b1110, .tags = {make_tag(1)}}};
  coll::op_route(m, reqs);
  ASSERT_TRUE(m.store().has(0b1110, make_tag(1)));
  EXPECT_EQ(*m.store().get(0b1110, make_tag(1)), payload)
      << "chunks must rejoin in order";
  const auto t = m.report().totals();
  EXPECT_EQ(t.rounds, 3u);
  EXPECT_DOUBLE_EQ(t.word_cost, 12.0) << "t_s*h + t_w*M, the paper's "
                                         "multi-port point-to-point cost";
}

TEST(PrepRoute, SmallMessageFallsBackToSinglePath) {
  // 2 words over 3 hops cannot keep 3 paths busy; ships whole.
  const Hypercube hc(3);
  Machine m(hc, PortModel::kMultiPort, {1.0, 1.0, 1.0});
  m.store().put(0, make_tag(1), {1.0, 2.0});
  const RouteRequest reqs[] = {{.src = 0, .dst = 0b111, .tags = {make_tag(1)}}};
  coll::op_route(m, reqs);
  EXPECT_TRUE(m.store().has(0b111, make_tag(1)));
  const auto t = m.report().totals();
  EXPECT_EQ(t.rounds, 3u);
  EXPECT_DOUBLE_EQ(t.word_cost, 6.0);
}

TEST(PrepRoute, MixedDistancesBalancePerRound) {
  // The 3DD phase-1 shape: disjoint-chain messages of distances 1..2, all
  // of M = 64 words, on a multi-port machine: every round moves M/2 words
  // per link and the phase costs 2 t_s + t_w M.
  const Grid3D grid(64);
  Machine m(grid.cube(), PortModel::kMultiPort, {1.0, 1.0, 1.0});
  std::vector<RouteRequest> reqs;
  for (std::uint32_t i = 0; i < grid.q(); ++i) {
    for (std::uint32_t k = 0; k < grid.q(); ++k) {
      if (i == k) continue;
      const Tag t = make_tag(2, static_cast<std::uint16_t>(i),
                             static_cast<std::uint16_t>(k));
      m.store().put(grid.node(i, i, k), t, std::vector<double>(64, 1.0));
      reqs.push_back({.src = grid.node(i, i, k),
                      .dst = grid.node(i, k, k),
                      .tags = {t}});
    }
  }
  m.reset_stats();
  coll::op_route(m, reqs);
  const auto t = m.report().totals();
  EXPECT_EQ(t.rounds, 2u) << "max distance = log q = 2";
  EXPECT_DOUBLE_EQ(t.word_cost, 64.0) << "t_w * M despite multi-hop";
  for (const auto& r : reqs) {
    EXPECT_TRUE(m.store().has(r.dst, r.tags[0]));
    EXPECT_EQ(m.store().item_words(r.dst, r.tags[0]), 64u);
  }
}

TEST(PrepRoute, ManyTagsTravelTogether) {
  const Hypercube hc(3);
  Machine m(hc, PortModel::kMultiPort, {1.0, 1.0, 1.0});
  m.store().put(1, make_tag(1), std::vector<double>(8, 1.0));
  m.store().put(1, make_tag(2), std::vector<double>(8, 2.0));
  const RouteRequest reqs[] = {
      {.src = 1, .dst = 0b110, .tags = {make_tag(1), make_tag(2)}}};
  coll::op_route(m, reqs);
  EXPECT_TRUE(m.store().has(0b110, make_tag(1)));
  EXPECT_TRUE(m.store().has(0b110, make_tag(2)));
  EXPECT_EQ((*m.store().get(0b110, make_tag(2)))[0], 2.0);
}

TEST(PrepRoute, RandomPermutationDeliversUnderBothPorts) {
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    const Hypercube hc(5);
    Machine m(hc, port, {1.0, 1.0, 1.0});
    Prng rng(99);
    std::vector<std::uint32_t> perm(hc.size());
    for (std::uint32_t i = 0; i < hc.size(); ++i) perm[i] = i;
    for (std::uint32_t i = hc.size(); i-- > 1;) {
      std::swap(perm[i], perm[rng.next_below(i + 1)]);
    }
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < hc.size(); ++i) {
      if (perm[i] == i) continue;
      const Tag t = make_tag(4, static_cast<std::uint16_t>(i));
      m.store().put(i, t, std::vector<double>(10, static_cast<double>(i)));
      reqs.push_back({.src = i, .dst = perm[i], .tags = {t}});
    }
    coll::op_route(m, reqs);
    for (const auto& r : reqs) {
      ASSERT_TRUE(m.store().has(r.dst, r.tags[0])) << to_string(port);
      EXPECT_EQ(m.store().item_words(r.dst, r.tags[0]), 10u);
      EXPECT_FALSE(m.store().has(r.src, r.tags[0]));
    }
  }
}

TEST(PrepRoute, EmptyAndSelfRequestsAreFree) {
  const Hypercube hc(3);
  Machine m(hc, PortModel::kMultiPort, {1.0, 1.0, 1.0});
  m.store().put(5, make_tag(1), {1.0});
  const RouteRequest reqs[] = {{.src = 5, .dst = 5, .tags = {make_tag(1)}}};
  coll::op_route(m, reqs);
  EXPECT_EQ(m.report().totals().rounds, 0u);
  EXPECT_TRUE(m.store().has(5, make_tag(1)));
  coll::op_route(m, {});
  EXPECT_EQ(m.report().totals().rounds, 0u);
}

}  // namespace
}  // namespace hcmm
