// Tests for dimension-ordered point-to-point routing: delivery, hop-count
// optimality on congestion-free patterns, honest serialization under port
// constraints, and the costs the paper charges for its p2p phases.

#include <gtest/gtest.h>

#include "hcmm/sim/machine.hpp"
#include "hcmm/sim/router.hpp"
#include "hcmm/support/prng.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm {
namespace {

TEST(Router, DeliversAcrossMultipleHops) {
  const Hypercube hc(4);
  Machine m(hc, PortModel::kOnePort, {1.0, 1.0, 1.0});
  m.store().put(0b0000, make_tag(1), {42.0});
  const RouteRequest reqs[] = {{.src = 0b0000, .dst = 0b1011, .tags = {make_tag(1)}}};
  const Schedule s = route_p2p(hc, m.port(), reqs);
  EXPECT_EQ(s.round_count(), 3u) << "hamming distance 3 -> 3 rounds";
  m.run(s);
  EXPECT_TRUE(m.store().has(0b1011, make_tag(1)));
  EXPECT_FALSE(m.store().has(0b0000, make_tag(1)));
  // No residue at intermediate hops.
  EXPECT_FALSE(m.store().has(0b0001, make_tag(1)));
  EXPECT_FALSE(m.store().has(0b0011, make_tag(1)));
}

TEST(Router, SelfSendIsFree) {
  const Hypercube hc(3);
  const RouteRequest reqs[] = {{.src = 5, .dst = 5, .tags = {make_tag(1)}}};
  EXPECT_TRUE(route_p2p(hc, PortModel::kOnePort, reqs).empty());
}

TEST(Router, DisjointSubcubePatternIsCongestionFree) {
  // The 3DD first phase: p_{i,i,k} -> p_{i,k,k}.  Every message stays inside
  // its own y-chain subcube, so e-cube routing needs exactly log q rounds.
  const Grid3D grid(64);
  Machine m(grid.cube(), PortModel::kOnePort, {1.0, 1.0, 1.0});
  std::vector<RouteRequest> reqs;
  for (std::uint32_t i = 0; i < grid.q(); ++i) {
    for (std::uint32_t k = 0; k < grid.q(); ++k) {
      const Tag t = make_tag(2, static_cast<std::uint16_t>(i),
                             static_cast<std::uint16_t>(k));
      m.store().put(grid.node(i, i, k), t, {static_cast<double>(i * 10 + k)});
      reqs.push_back({.src = grid.node(i, i, k),
                      .dst = grid.node(i, k, k),
                      .tags = {t}});
    }
  }
  const Schedule s = route_p2p(grid.cube(), m.port(), reqs);
  EXPECT_LE(s.round_count(), grid.chain_dim())
      << "paper charges log q rounds for this pattern";
  m.run(s);
  for (std::uint32_t i = 0; i < grid.q(); ++i) {
    for (std::uint32_t k = 0; k < grid.q(); ++k) {
      const Tag t = make_tag(2, static_cast<std::uint16_t>(i),
                             static_cast<std::uint16_t>(k));
      ASSERT_TRUE(m.store().has(grid.node(i, k, k), t));
      EXPECT_EQ((*m.store().get(grid.node(i, k, k), t))[0], i * 10 + k);
    }
  }
}

TEST(Router, OnePortSerializesTwoMessagesFromOneSource) {
  // DNS phase 1 shape: one node emits two messages; one-port must stagger.
  const Hypercube hc(3);
  Machine m(hc, PortModel::kOnePort, {1.0, 1.0, 1.0});
  m.store().put(0, make_tag(1), {1.0});
  m.store().put(0, make_tag(2), {2.0});
  const RouteRequest reqs[] = {
      {.src = 0, .dst = 1, .tags = {make_tag(1)}},
      {.src = 0, .dst = 2, .tags = {make_tag(2)}},
  };
  const Schedule s = route_p2p(hc, m.port(), reqs);
  EXPECT_EQ(s.round_count(), 2u);
  m.run(s);
  EXPECT_TRUE(m.store().has(1, make_tag(1)));
  EXPECT_TRUE(m.store().has(2, make_tag(2)));
}

TEST(Router, MultiPortOverlapsDistinctLinks) {
  const Hypercube hc(3);
  Machine m(hc, PortModel::kMultiPort, {1.0, 1.0, 1.0});
  m.store().put(0, make_tag(1), {1.0});
  m.store().put(0, make_tag(2), {2.0});
  const RouteRequest reqs[] = {
      {.src = 0, .dst = 1, .tags = {make_tag(1)}},
      {.src = 0, .dst = 2, .tags = {make_tag(2)}},
  };
  const Schedule s = route_p2p(hc, m.port(), reqs);
  EXPECT_EQ(s.round_count(), 1u) << "different first-hop dimensions overlap";
  m.run(s);
}

TEST(Router, ContendedReceiverSerializes) {
  // Two single-hop messages to the same destination: one-port allows only
  // one receive per round, so the router must stagger them.
  const Hypercube hc(2);
  Machine m(hc, PortModel::kOnePort, {1.0, 1.0, 1.0});
  m.store().put(1, make_tag(1), {1.0});
  m.store().put(2, make_tag(2), {2.0});
  const RouteRequest reqs[] = {
      {.src = 1, .dst = 0, .tags = {make_tag(1)}},
      {.src = 2, .dst = 0, .tags = {make_tag(2)}},
  };
  const Schedule s = route_p2p(hc, m.port(), reqs);
  EXPECT_EQ(s.round_count(), 2u);
  m.run(s);
  EXPECT_TRUE(m.store().has(0, make_tag(1)));
  EXPECT_TRUE(m.store().has(0, make_tag(2)));
}

TEST(Router, PermutationCostNeverExceedsSequentialBound) {
  // Random permutations on a 5-cube: e-cube with greedy packing must beat
  // routing the messages one after another.
  const Hypercube hc(5);
  Prng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint32_t> perm(hc.size());
    for (std::uint32_t i = 0; i < hc.size(); ++i) perm[i] = i;
    for (std::uint32_t i = hc.size(); i-- > 1;) {
      std::swap(perm[i], perm[rng.next_below(i + 1)]);
    }
    Machine m(hc, PortModel::kOnePort, {1.0, 1.0, 1.0});
    std::vector<RouteRequest> reqs;
    std::uint32_t total_hops = 0;
    for (std::uint32_t i = 0; i < hc.size(); ++i) {
      if (perm[i] == i) continue;
      const Tag t = make_tag(3, static_cast<std::uint16_t>(i));
      m.store().put(i, t, {static_cast<double>(i)});
      reqs.push_back({.src = i, .dst = perm[i], .tags = {t}});
      total_hops += hc.distance(i, perm[i]);
    }
    const Schedule s = route_p2p(hc, m.port(), reqs);
    EXPECT_LE(s.round_count(), total_hops);
    m.run(s);
    for (const auto& r : reqs) {
      EXPECT_TRUE(m.store().has(r.dst, r.tags[0]));
    }
  }
}

}  // namespace
}  // namespace hcmm
