// Tests for the SPMD runtime: message ordering, barriers, failure
// propagation, and the two SPMD algorithm ports against the serial oracle
// and against the simulated-machine implementations.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/runtime/spmd_matmul.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

using rt::Rank;
using rt::Team;

TEST(Team, PingPong) {
  Team team(2, std::chrono::milliseconds(5000));
  team.run([](Rank& r) {
    if (r.id() == 0) {
      r.send(1, 7, Matrix(1, 1, {42.0}));
      const Matrix back = r.recv(1, 8);
      EXPECT_EQ(back(0, 0), 43.0);
    } else {
      Matrix m = r.recv(0, 7);
      m(0, 0) += 1.0;
      r.send(0, 8, std::move(m));
    }
  });
}

TEST(Team, FifoOrderPerTag) {
  Team team(2, std::chrono::milliseconds(5000));
  team.run([](Rank& r) {
    if (r.id() == 0) {
      for (int s = 0; s < 20; ++s) {
        r.send(1, 1, Matrix(1, 1, {static_cast<double>(s)}));
      }
    } else {
      for (int s = 0; s < 20; ++s) {
        EXPECT_EQ(r.recv(0, 1)(0, 0), s) << "messages must arrive in order";
      }
    }
  });
}

TEST(Team, BarrierSynchronizes) {
  Team team(8, std::chrono::milliseconds(5000));
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  team.run([&](Rank& r) {
    ++before;
    r.barrier();
    if (before.load() != 8) violated = true;
    r.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(Team, RecvTimesOutOnDeadlock) {
  Team team(2, std::chrono::milliseconds(100));
  EXPECT_THROW(team.run([](Rank& r) {
                 if (r.id() == 0) (void)r.recv(1, 99);  // never sent
               }),
               CheckError);
}

TEST(Team, PeerFailurePropagates) {
  // Short timeout on purpose: the waiter must be woken by the failure, so
  // the test passes long before any timeout could.
  Team team(2, std::chrono::milliseconds(2000));
  EXPECT_THROW(team.run([](Rank& r) {
                 if (r.id() == 0) throw std::runtime_error("rank 0 died");
                 (void)r.recv(0, 1);  // must be woken, not time out
               }),
               std::runtime_error);
  ASSERT_EQ(team.last_run_errors().size(), 1u);
  EXPECT_EQ(team.last_run_errors()[0].rank, 0u);
}

TEST(Team, EnvTimeoutOverride) {
  rt::reset_env_overrides_for_testing();
  ASSERT_EQ(setenv("HCMM_RT_TIMEOUT_MS", "123", 1), 0);
  EXPECT_EQ(Team(2).timeout(), std::chrono::milliseconds(123));
  // An explicit constructor argument always beats the environment.
  EXPECT_EQ(Team(2, std::chrono::milliseconds(77)).timeout(),
            std::chrono::milliseconds(77));
  // The variable is read once per process: later edits are invisible until
  // the cache is dropped.
  ASSERT_EQ(setenv("HCMM_RT_TIMEOUT_MS", "456", 1), 0);
  EXPECT_EQ(Team(2).timeout(), std::chrono::milliseconds(123));
  rt::reset_env_overrides_for_testing();
  EXPECT_EQ(Team(2).timeout(), std::chrono::milliseconds(456));
  ASSERT_EQ(unsetenv("HCMM_RT_TIMEOUT_MS"), 0);
  rt::reset_env_overrides_for_testing();
  EXPECT_EQ(Team(2).timeout(), std::chrono::milliseconds(30000));
}

TEST(Team, EnvTimeoutRejectsMalformedValues) {
  // Strict strtoull discipline (the same hcmm_chaos applies to --seed):
  // trailing garbage, non-numbers, zero, negatives, and out-of-range values
  // are configuration errors, not silent fallbacks to the default.
  for (const char* bad : {"soon", "-5", "0", "1500ms", " 250", "250 ",
                          "99999999999999999999", "86400001", ""}) {
    rt::reset_env_overrides_for_testing();
    ASSERT_EQ(setenv("HCMM_RT_TIMEOUT_MS", bad, 1), 0);
    try {
      Team team(2);
      FAIL() << "value \"" << bad << "\" must be rejected";
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("HCMM_RT_TIMEOUT_MS"), std::string::npos) << what;
      EXPECT_NE(what.find(std::string("got \"") + bad + "\""),
                std::string::npos)
          << "diagnostic must name the offending text: " << what;
    }
  }
  ASSERT_EQ(unsetenv("HCMM_RT_TIMEOUT_MS"), 0);
  rt::reset_env_overrides_for_testing();
  EXPECT_EQ(Team(2).timeout(), std::chrono::milliseconds(30000));
}

TEST(Team, TwoConcurrentFailuresAreAggregated) {
  Team team(4, std::chrono::milliseconds(5000));
  try {
    // Ranks 1 and 3 fail before their first team op, so neither can be
    // unwound early by the other's failure — both must be diagnosed.
    team.run([](Rank& r) {
      if (r.id() == 1) throw std::runtime_error("checksum mismatch");
      if (r.id() == 3) throw std::invalid_argument("bad tile shape");
      (void)r.recv(1, 5);  // never sent; woken by the failures
    });
    FAIL() << "run must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 rank(s) failed"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1: checksum mismatch"), std::string::npos);
    EXPECT_NE(what.find("rank 3: bad tile shape"), std::string::npos);
  }
  ASSERT_EQ(team.last_run_errors().size(), 2u);
  EXPECT_EQ(team.last_run_errors()[0].rank, 1u);
  EXPECT_EQ(team.last_run_errors()[1].rank, 3u);
}

TEST(Team, InjectedDeathAbortsFastWithDiagnosis) {
  Team team(2, std::chrono::milliseconds(10000));
  team.inject_rank_death(1);
  const auto start = std::chrono::steady_clock::now();
  try {
    team.run([](Rank& r) {
      if (r.id() == 0) (void)r.recv(1, 9);  // peer dies before sending
      if (r.id() == 1) r.send(0, 9, Matrix(1, 1, {1.0}));
    });
    FAIL() << "run must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected rank death"),
              std::string::npos)
        << e.what();
  }
  // The waiter must be cut short by the death diagnosis, not by the timeout.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(5000));
  team.clear_injections();
  team.run([](Rank&) {});  // clean after clearing
  EXPECT_TRUE(team.last_run_errors().empty());
}

TEST(Team, SlowPeerCostsRetriesNotAborts) {
  // recv waits in doubling slices starting at timeout/8; a 300 ms delay
  // against a 100 ms first slice forces at least one retry, but the run
  // still succeeds because the peer is merely slow.
  Team team(2, std::chrono::milliseconds(800));
  team.inject_rank_delay(1, std::chrono::milliseconds(300));
  team.run([](Rank& r) {
    if (r.id() == 0) {
      EXPECT_EQ(r.recv(1, 4)(0, 0), 9.0);
    }
    if (r.id() == 1) r.send(0, 4, Matrix(1, 1, {9.0}));
  });
  EXPECT_GE(team.last_run_recv_retries(), 1u);
  team.clear_injections();
  team.run([](Rank& r) {
    if (r.id() == 0) r.send(1, 6, Matrix(1, 1, {2.0}));
    if (r.id() == 1) (void)r.recv(0, 6);
  });
  EXPECT_TRUE(team.last_run_errors().empty());
}

TEST(Team, ReusableAcrossRuns) {
  Team team(4, std::chrono::milliseconds(5000));
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> count{0};
    team.run([&](Rank&) { ++count; });
    EXPECT_EQ(count.load(), 4);
  }
}

TEST(Team, TwoDeadPeersRaiseLocatedDeadPeerErrors) {
  Team team(4, std::chrono::milliseconds(10000));
  team.inject_rank_death(1);
  team.inject_rank_death(2);
  std::atomic<int> located{0};
  try {
    team.run([&](Rank& r) {
      if (r.id() == 1) r.send(0, 7, Matrix(1, 1, {1.0}));  // dies at op start
      if (r.id() == 2) r.send(0, 8, Matrix(1, 1, {1.0}));  // dies at op start
      if (r.id() == 0) {
        // Both waits must be cut short with the *specific* dead peer named,
        // not a generic timeout — and diagnosing the first dead peer must
        // not mask the second.
        try {
          (void)r.recv(1, 7);
        } catch (const rt::DeadPeerError& e) {
          if (e.rank() == 1) ++located;
        }
        try {
          (void)r.recv(2, 8);
        } catch (const rt::DeadPeerError& e) {
          if (e.rank() == 2) ++located;
          throw;  // unwind as a secondary failure
        }
      }
    });
    FAIL() << "run must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 rank(s) failed"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
  }
  EXPECT_EQ(located.load(), 2);
  ASSERT_EQ(team.last_run_errors().size(), 2u);
  EXPECT_EQ(team.last_run_errors()[0].rank, 1u);
  EXPECT_EQ(team.last_run_errors()[1].rank, 2u);
}

TEST(Team, SlowVsDeadDiscriminationAtEnvTimeout) {
  // Both halves run against the same HCMM_RT_TIMEOUT_MS budget: a peer that
  // is slow but inside the budget costs retries and succeeds, while a dead
  // peer aborts the waiter well before the budget expires.
  rt::reset_env_overrides_for_testing();
  ASSERT_EQ(setenv("HCMM_RT_TIMEOUT_MS", "1000", 1), 0);
  Team team(2);
  ASSERT_EQ(team.timeout(), std::chrono::milliseconds(1000));
  team.inject_rank_delay(1, std::chrono::milliseconds(250));
  team.run([](Rank& r) {
    if (r.id() == 0) {
      EXPECT_EQ(r.recv(1, 3)(0, 0), 5.0);
    }
    if (r.id() == 1) r.send(0, 3, Matrix(1, 1, {5.0}));
  });
  EXPECT_TRUE(team.last_run_errors().empty());
  EXPECT_GE(team.last_run_recv_retries(), 1u);  // 250 ms > the 125 ms slice
  team.clear_injections();
  team.inject_rank_death(1);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(team.run([](Rank& r) {
                 if (r.id() == 0) (void)r.recv(1, 4);
                 if (r.id() == 1) r.send(0, 4, Matrix(1, 1, {5.0}));
               }),
               std::runtime_error);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(1000));
  ASSERT_EQ(team.last_run_errors().size(), 1u);
  EXPECT_EQ(team.last_run_errors()[0].rank, 1u);
  ASSERT_EQ(unsetenv("HCMM_RT_TIMEOUT_MS"), 0);
  rt::reset_env_overrides_for_testing();
}

TEST(Team, BarrierReusableAcrossFailedRuns) {
  // A failed run must not leave the barrier's generation counting wedged:
  // two successive runs that abort mid-barrier, then a clean run, all over
  // the same Team.
  Team team(4, std::chrono::milliseconds(5000));
  for (int round = 0; round < 2; ++round) {
    EXPECT_THROW(team.run([&](Rank& r) {
                   if (r.id() == 3) {
                     throw std::runtime_error("round casualty");
                   }
                   r.barrier();  // rank 3 never arrives; woken by its failure
                 }),
                 std::runtime_error)
        << "round " << round;
    ASSERT_EQ(team.last_run_errors().size(), 1u);
    EXPECT_EQ(team.last_run_errors()[0].rank, 3u);
  }
  std::atomic<int> after{0};
  team.run([&](Rank& r) {
    r.barrier();
    ++after;
    r.barrier();
  });
  EXPECT_EQ(after.load(), 4);
  EXPECT_TRUE(team.last_run_errors().empty());
}

TEST(Team, DeadlockDiagnosisNamesTheMissingMessage) {
  // When the timeout genuinely expires (no failure, no death — just a
  // message that never comes) the diagnostic must locate the deadlock:
  // which rank waited, on whom, and for which tag.
  Team team(2, std::chrono::milliseconds(150));
  try {
    team.run([](Rank& r) {
      if (r.id() == 0) (void)r.recv(1, 42);  // rank 1 never sends
    });
    FAIL() << "run must throw";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0 timed out waiting for (1, tag 42)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("deadlock?"), std::string::npos) << what;
  }
}

TEST(Team, FifoHoldsForInterleavedSendersOnOneKey) {
  // FIFO is per (to, from, tag) key: two senders interleaving sends to the
  // same receiver under the same tag must each be received in their own
  // send order, whatever the cross-sender interleaving.
  constexpr int kMsgs = 64;
  Team team(3, std::chrono::milliseconds(10000));
  team.run([](Rank& r) {
    if (r.id() == 2) {
      double expect1 = 0.0;
      double expect2 = 1000.0;
      for (int i = 0; i < 2 * kMsgs; ++i) {
        // Drain in an order chosen by the receiver, alternating sources so
        // both streams stay interleaved in the mailbox.
        const std::uint32_t from = (i % 2 == 0) ? 0u : 1u;
        const double got = r.recv(from, 5)(0, 0);
        double& expect = (from == 0) ? expect1 : expect2;
        EXPECT_EQ(got, expect) << "stream from rank " << from;
        expect += 1.0;
      }
    } else {
      const double base = (r.id() == 0) ? 0.0 : 1000.0;
      for (int s = 0; s < kMsgs; ++s) {
        r.send(2, 5, Matrix(1, 1, {base + s}));
      }
    }
  });
}

TEST(SpmdCannon, MatchesOracle) {
  for (const std::uint32_t p : {1u, 4u, 16u}) {
    Team team(p, std::chrono::milliseconds(20000));
    const std::size_t n = 32;
    const Matrix a = random_matrix(n, n, 301);
    const Matrix b = random_matrix(n, n, 302);
    const Matrix c = rt::spmd_cannon(team, a, b);
    EXPECT_LE(max_abs_diff(c, multiply_naive(a, b)), 1e-11) << "p=" << p;
  }
}

TEST(SpmdAll3D, MatchesOracle) {
  for (const std::uint32_t p : {1u, 8u, 64u}) {
    Team team(p, std::chrono::milliseconds(20000));
    const std::size_t n = 32;
    const Matrix a = random_matrix(n, n, 303);
    const Matrix b = random_matrix(n, n, 304);
    const Matrix c = rt::spmd_all3d(team, a, b);
    EXPECT_LE(max_abs_diff(c, multiply_naive(a, b)), 1e-11) << "p=" << p;
  }
}

TEST(SpmdSimple, MatchesOracle) {
  for (const std::uint32_t p : {1u, 4u, 16u, 64u}) {
    Team team(p, std::chrono::milliseconds(20000));
    const std::size_t n = 32;
    const Matrix a = random_matrix(n, n, 311);
    const Matrix b = random_matrix(n, n, 312);
    EXPECT_LE(max_abs_diff(rt::spmd_simple(team, a, b), multiply_naive(a, b)),
              1e-11)
        << "p=" << p;
  }
}

TEST(SpmdDns, MatchesOracle) {
  for (const std::uint32_t p : {1u, 8u, 64u}) {
    Team team(p, std::chrono::milliseconds(20000));
    const std::size_t n = 24;
    const Matrix a = random_matrix(n, n, 313);
    const Matrix b = random_matrix(n, n, 314);
    EXPECT_LE(max_abs_diff(rt::spmd_dns(team, a, b), multiply_naive(a, b)),
              1e-11)
        << "p=" << p;
  }
}

TEST(SpmdDiag3D, MatchesOracle) {
  for (const std::uint32_t p : {1u, 8u, 64u}) {
    Team team(p, std::chrono::milliseconds(20000));
    const std::size_t n = 24;
    const Matrix a = random_matrix(n, n, 315);
    const Matrix b = random_matrix(n, n, 316);
    EXPECT_LE(max_abs_diff(rt::spmd_diag3d(team, a, b), multiply_naive(a, b)),
              1e-11)
        << "p=" << p;
  }
}

TEST(SpmdBerntsen, MatchesOracle) {
  for (const std::uint32_t p : {1u, 8u, 64u}) {
    Team team(p, std::chrono::milliseconds(20000));
    const std::size_t n = 32;
    const Matrix a = random_matrix(n, n, 317);
    const Matrix b = random_matrix(n, n, 318);
    EXPECT_LE(max_abs_diff(rt::spmd_berntsen(team, a, b),
                           multiply_naive(a, b)),
              1e-11)
        << "p=" << p;
  }
}

TEST(SpmdDiag2D, MatchesOracle) {
  for (const std::uint32_t p : {1u, 4u, 16u}) {
    Team team(p, std::chrono::milliseconds(20000));
    const std::size_t n = 16;
    const Matrix a = random_matrix(n, n, 331);
    const Matrix b = random_matrix(n, n, 332);
    EXPECT_LE(max_abs_diff(rt::spmd_diag2d(team, a, b), multiply_naive(a, b)),
              1e-11)
        << "p=" << p;
  }
}

TEST(SpmdAllTrans, MatchesOracle) {
  for (const std::uint32_t p : {1u, 8u, 64u}) {
    Team team(p, std::chrono::milliseconds(20000));
    const std::size_t n = 32;
    const Matrix a = random_matrix(n, n, 333);
    const Matrix b = random_matrix(n, n, 334);
    EXPECT_LE(max_abs_diff(rt::spmd_alltrans(team, a, b),
                           multiply_naive(a, b)),
              1e-11)
        << "p=" << p;
  }
}

TEST(Spmd, AllPortsAgreePairwise) {
  // Five independent dataflows, one product.
  const std::size_t n = 48;
  const Matrix a = random_matrix(n, n, 321);
  const Matrix b = random_matrix(n, n, 322);
  Team cube(64, std::chrono::milliseconds(20000));
  const Matrix c1 = rt::spmd_all3d(cube, a, b);
  const Matrix c2 = rt::spmd_dns(cube, a, b);
  const Matrix c3 = rt::spmd_diag3d(cube, a, b);
  const Matrix c4 = rt::spmd_berntsen(cube, a, b);
  Team square(16, std::chrono::milliseconds(20000));
  const Matrix c5 = rt::spmd_simple(square, a, b);
  EXPECT_LE(max_abs_diff(c1, c2), 1e-10);
  EXPECT_LE(max_abs_diff(c2, c3), 1e-10);
  EXPECT_LE(max_abs_diff(c3, c4), 1e-10);
  EXPECT_LE(max_abs_diff(c4, c5), 1e-10);
}

TEST(Spmd, AgreesWithSimulatedMachine) {
  // The SPMD port and the simulator implementation share no code; matching
  // outputs cross-validate both dataflows.
  const std::size_t n = 48;
  const Matrix a = random_matrix(n, n, 305);
  const Matrix b = random_matrix(n, n, 306);
  Team team(64, std::chrono::milliseconds(20000));
  const Matrix spmd = rt::spmd_all3d(team, a, b);
  const auto alg = algo::make_algorithm(algo::AlgoId::kAll3D);
  Machine machine(Hypercube::with_nodes(64), PortModel::kOnePort,
                  CostParams{150, 3, 1});
  const auto sim = alg->run(a, b, machine);
  EXPECT_LE(max_abs_diff(spmd, sim.c), 1e-11);
}

TEST(Spmd, RejectsBadShapes) {
  Team team(8, std::chrono::milliseconds(1000));
  const Matrix a = random_matrix(8, 8, 1);
  EXPECT_THROW((void)rt::spmd_cannon(team, a, a), std::invalid_argument)
      << "8 ranks are not a square grid";
  Team team9(16, std::chrono::milliseconds(1000));
  const Matrix odd = random_matrix(9, 9, 1);
  EXPECT_THROW((void)rt::spmd_cannon(team9, odd, odd), CheckError)
      << "9 does not divide by 4";
}

}  // namespace
}  // namespace hcmm
