// Tests for the semantic dataflow certification pass (analysis/semantic):
// every registered algorithm's recorded trace must certify exactly-once
// product coverage at several dimensions and both port models, ABFT
// wrappers must stay clean (checksum traffic is untracked but never
// collected), and a systematic trace-mutation sweep must be killed at
// >= 95% — the gate that the pass actually *proves* C = A·B rather than
// pattern-matching the helpers' happy path.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "hcmm/abft/protect.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/analysis/semantic.hpp"
#include "hcmm/analysis/trace.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/machine.hpp"

namespace hcmm {
namespace {

using analysis::DiagnosticList;
using analysis::RunTrace;
using analysis::SemanticSummary;
using analysis::TraceEvent;
using analysis::TraceRecorder;

std::size_t pick_n(const algo::DistributedMatmul& alg, std::uint32_t p) {
  for (std::size_t n = 2; n <= 512; n += 2) {
    if (alg.applicable(n, p)) return n;
  }
  return 0;
}

RunTrace record_trace(algo::DistributedMatmul& alg, std::uint32_t d,
                      PortModel port) {
  const std::uint32_t p = 1u << d;
  const std::size_t n = pick_n(alg, p);
  EXPECT_GT(n, 0u) << alg.name() << " d=" << d;
  const Matrix a = random_matrix(n, n, 11);
  const Matrix b = random_matrix(n, n, 13);
  Machine m(Hypercube::with_nodes(p), port, CostParams{});
  TraceRecorder rec(m);
  (void)alg.run(a, b, m);
  return rec.take();
}

bool has_semantic_error(const DiagnosticList& dl) {
  return std::any_of(dl.diags().begin(), dl.diags().end(), [](const auto& d) {
    return d.code.rfind("semantic.", 0) == 0;
  });
}

// ---- clean certification ---------------------------------------------------

TEST(SemanticPass, AllBareAlgorithmsCertifyExactlyOnce) {
  for (const std::uint32_t d : {2u, 3u, 4u, 6u}) {
    const std::uint32_t p = 1u << d;
    for (auto& alg : algo::all_algorithms()) {
      for (const PortModel port :
           {PortModel::kOnePort, PortModel::kMultiPort}) {
        if (!alg->supports(port)) continue;
        if (pick_n(*alg, p) == 0) continue;
        SCOPED_TRACE(alg->name() + " d=" + std::to_string(d) +
                     (port == PortModel::kOnePort ? " one-port"
                                                  : " multi-port"));
        const RunTrace trace = record_trace(*alg, d, port);
        DiagnosticList dl;
        const SemanticSummary sum = analysis::run_semantic_pass(trace, dl);
        EXPECT_TRUE(dl.empty()) << dl.to_string();
        EXPECT_TRUE(sum.clean);
        EXPECT_GT(sum.n, 0u);
        EXPECT_GT(sum.gemm_products, 0u);
        EXPECT_GT(sum.blocks_collected, 0u);
        EXPECT_GE(sum.terms_collected, sum.blocks_collected);
      }
    }
  }
}

TEST(SemanticPass, AbftProtectedRunsCertify) {
  struct Case {
    algo::AlgoId id;
    std::uint32_t d;
    PortModel port;
  };
  for (const Case c : {Case{algo::AlgoId::kCannon, 2, PortModel::kOnePort},
                       Case{algo::AlgoId::kDNS, 3, PortModel::kOnePort},
                       Case{algo::AlgoId::kAll3D, 3, PortModel::kMultiPort}}) {
    auto alg = abft::make_protected(c.id);
    SCOPED_TRACE(alg->name() + " d=" + std::to_string(c.d));
    const RunTrace trace = record_trace(*alg, c.d, c.port);
    DiagnosticList dl;
    const SemanticSummary sum = analysis::run_semantic_pass(trace, dl);
    EXPECT_TRUE(dl.empty()) << dl.to_string();
    EXPECT_TRUE(sum.clean);
    EXPECT_GT(sum.terms_collected, 0u);
  }
}

TEST(SemanticPass, CertificateAssembly) {
  SemanticSummary clean;
  clean.clean = true;
  clean.terms_collected = 4;
  analysis::DimCertificate legality;
  legality.closed_form = "R(d) = 3d";
  legality.certified_all_p = true;
  auto cert = analysis::certify_semantics(
      "Cannon", PortModel::kOnePort, {{2, clean}, {4, clean}}, &legality);
  EXPECT_TRUE(cert.clean_all_dims);
  EXPECT_TRUE(cert.certified_all_p);
  EXPECT_NE(cert.to_string().find("Cannon"), std::string::npos);
  EXPECT_NE(cert.to_string().find("PROVEN"), std::string::npos);

  SemanticSummary dirty = clean;
  dirty.clean = false;
  cert = analysis::certify_semantics("Cannon", PortModel::kOnePort,
                                     {{2, clean}, {4, dirty}}, &legality);
  EXPECT_FALSE(cert.clean_all_dims);
  EXPECT_FALSE(cert.certified_all_p);

  // Legality alone is not enough: without clean dims there is no lift, and
  // without a legality certificate the proof stays at the sampled dims.
  cert = analysis::certify_semantics("Cannon", PortModel::kOnePort,
                                     {{2, clean}}, nullptr);
  EXPECT_TRUE(cert.clean_all_dims);
  EXPECT_FALSE(cert.certified_all_p);
}

// ---- mutation-kill harness -------------------------------------------------
//
// Each mutator enumerates its applicable sites in a recorded trace and
// produces one mutant per site; the pass must flag the mutant.  Sites are
// stride-sampled to bound runtime without losing coverage of distinct
// phases (early staging, mid-run schedules, final collects).

struct Mutator {
  const char* name;
  std::function<std::size_t(const RunTrace&)> sites;
  std::function<RunTrace(RunTrace, std::size_t)> apply;  // by-value copy
};

std::vector<std::size_t> transfer_sites(const RunTrace& t, bool combine_only) {
  std::vector<std::size_t> flat;  // flattened (schedule, round, transfer)
  std::size_t id = 0;
  for (const Schedule& s : t.schedules) {
    for (const Round& r : s.rounds) {
      for (const Transfer& tr : r.transfers) {
        if (!combine_only || tr.combine) flat.push_back(id);
        ++id;
      }
    }
  }
  return flat;
}

Transfer* transfer_at(RunTrace& t, std::size_t flat_id, std::size_t* round_sched,
                      Round** round_out) {
  std::size_t id = 0;
  for (std::size_t si = 0; si < t.schedules.size(); ++si) {
    for (Round& r : t.schedules[si].rounds) {
      for (Transfer& tr : r.transfers) {
        if (id == flat_id) {
          if (round_sched != nullptr) *round_sched = si;
          if (round_out != nullptr) *round_out = &r;
          return &tr;
        }
        ++id;
      }
    }
  }
  return nullptr;
}

std::vector<std::size_t> event_sites(
    const RunTrace& t, const std::function<bool(const TraceEvent&)>& pred) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    if (pred(t.events[i])) out.push_back(i);
  }
  return out;
}

std::vector<Mutator> mutators() {
  std::vector<Mutator> out;
  out.push_back(
      {"drop-transfer",
       [](const RunTrace& t) { return transfer_sites(t, false).size(); },
       [](RunTrace t, std::size_t i) {
         const std::size_t id = transfer_sites(t, false)[i];
         Round* round = nullptr;
         Transfer* tr = transfer_at(t, id, nullptr, &round);
         round->transfers.erase(round->transfers.begin() +
                                (tr - round->transfers.data()));
         return t;
       }});
  out.push_back(
      {"dup-combine",
       [](const RunTrace& t) { return transfer_sites(t, true).size(); },
       [](RunTrace t, std::size_t i) {
         const std::size_t id = transfer_sites(t, true)[i];
         Round* round = nullptr;
         Transfer* tr = transfer_at(t, id, nullptr, &round);
         Transfer dup = *tr;
         dup.move_src = false;  // deliver the same payload a second time
         round->transfers.push_back(std::move(dup));
         return t;
       }});
  const auto put_pred = [](const TraceEvent& e) {
    return e.kind == TraceEvent::Kind::kStoreOp &&
           (e.store.kind == StoreEvent::Kind::kPut ||
            e.store.kind == StoreEvent::Kind::kPutShared);
  };
  out.push_back({"retag-payload",
                 [put_pred](const RunTrace& t) {
                   return event_sites(t, put_pred).size();
                 },
                 [put_pred](RunTrace t, std::size_t i) {
                   const std::size_t e = event_sites(t, put_pred)[i];
                   t.events[e].store.tag ^= 1;
                   return t;
                 }});
  const auto gemm_pred = [](const TraceEvent& e) {
    return e.kind == TraceEvent::Kind::kSemantic &&
           e.sem.kind == SemanticEvent::Kind::kGemm;
  };
  out.push_back({"swap-gemm-operands",
                 [gemm_pred](const RunTrace& t) {
                   return event_sites(t, gemm_pred).size();
                 },
                 [gemm_pred](RunTrace t, std::size_t i) {
                   const std::size_t e = event_sites(t, gemm_pred)[i];
                   std::swap(t.events[e].sem.a, t.events[e].sem.b);
                   return t;
                 }});
  const auto collect_pred = [](const TraceEvent& e) {
    return e.kind == TraceEvent::Kind::kSemantic &&
           e.sem.kind == SemanticEvent::Kind::kCollect;
  };
  out.push_back({"misplace-collect",
                 [collect_pred](const RunTrace& t) {
                   return event_sites(t, collect_pred).size();
                 },
                 [collect_pred](RunTrace t, std::size_t i) {
                   const std::size_t e = event_sites(t, collect_pred)[i];
                   t.events[e].sem.rect.r0 += t.events[e].sem.rect.rows;
                   return t;
                 }});
  out.push_back({"drop-collect",
                 [collect_pred](const RunTrace& t) {
                   return event_sites(t, collect_pred).size();
                 },
                 [collect_pred](RunTrace t, std::size_t i) {
                   const std::size_t e = event_sites(t, collect_pred)[i];
                   t.events.erase(t.events.begin() +
                                  static_cast<std::ptrdiff_t>(e));
                   return t;
                 }});
  return out;
}

TEST(SemanticMutation, KillRateAtLeast95Percent) {
  struct Subject {
    algo::AlgoId id;
    std::uint32_t d;
    PortModel port;
  };
  const Subject subjects[] = {
      {algo::AlgoId::kCannon, 2, PortModel::kOnePort},
      {algo::AlgoId::kDNS, 3, PortModel::kOnePort},
      {algo::AlgoId::kAll3D, 3, PortModel::kMultiPort},
      {algo::AlgoId::kHJE, 4, PortModel::kMultiPort},
  };
  std::size_t total = 0;
  std::size_t killed = 0;
  std::string survivors;
  for (const Subject& s : subjects) {
    auto alg = algo::make_algorithm(s.id);
    const RunTrace trace = record_trace(*alg, s.d, s.port);
    {
      DiagnosticList dl;
      analysis::run_semantic_pass(trace, dl);
      ASSERT_TRUE(dl.empty()) << alg->name() << " baseline dirty:\n"
                              << dl.to_string();
    }
    for (const Mutator& m : mutators()) {
      const std::size_t sites = m.sites(trace);
      const std::size_t stride = std::max<std::size_t>(1, sites / 25);
      for (std::size_t i = 0; i < sites; i += stride) {
        const RunTrace mutant = m.apply(trace, i);
        DiagnosticList dl;
        analysis::run_semantic_pass(mutant, dl);
        total += 1;
        if (has_semantic_error(dl)) {
          killed += 1;
        } else {
          survivors += "  " + alg->name() + " / " + m.name + " site " +
                       std::to_string(i) + "\n";
        }
      }
    }
  }
  ASSERT_GT(total, 100u);  // the sweep must actually exercise the pass
  EXPECT_GE(killed * 100, total * 95)
      << "killed " << killed << "/" << total << "; survivors:\n"
      << survivors;
}

// Focused checks: each mutation class trips its designated diagnostic.
// DNS is the subject because its trace exercises every site class —
// Cannon, e.g., accumulates locally and has no combine transfers.
TEST(SemanticMutation, DiagnosticCodesMatchDefectClass) {
  auto alg = algo::make_algorithm(algo::AlgoId::kDNS);
  const RunTrace trace = record_trace(*alg, 3, PortModel::kOnePort);
  const auto first_code = [](const RunTrace& t) {
    DiagnosticList dl;
    analysis::run_semantic_pass(t, dl);
    return dl.empty() ? std::string() : dl.diags().front().code;
  };
  const auto codes_of = [](const RunTrace& t) {
    DiagnosticList dl;
    analysis::run_semantic_pass(t, dl);
    std::vector<std::string> cs;
    for (const auto& d : dl.diags()) cs.push_back(d.code);
    return cs;
  };

  const auto ms = mutators();
  // mutators() order: drop-transfer, dup-combine, retag-payload, swap-gemm,
  // misplace-collect, drop-collect.
  for (const Mutator& m : ms) ASSERT_GT(m.sites(trace), 0u) << m.name;
  {
    const auto cs = codes_of(ms[1].apply(trace, 0));
    EXPECT_TRUE(std::find(cs.begin(), cs.end(),
                          "semantic.duplicate-product") != cs.end())
        << "dup-combine";
  }
  {
    const auto cs = codes_of(ms[3].apply(trace, 0));
    EXPECT_TRUE(std::find(cs.begin(), cs.end(),
                          "semantic.operand-mismatch") != cs.end())
        << "swap-gemm";
  }
  {
    const auto cs = codes_of(ms[4].apply(trace, 0));
    EXPECT_TRUE(std::find(cs.begin(), cs.end(),
                          "semantic.misplaced-product") != cs.end())
        << "misplace-collect";
  }
  {
    const auto cs = codes_of(ms[5].apply(trace, 0));
    EXPECT_TRUE(std::find(cs.begin(), cs.end(),
                          "semantic.missing-product") != cs.end())
        << "drop-collect";
  }
  EXPECT_NE(first_code(ms[0].apply(trace, 0)), "") << "drop-transfer";
}

}  // namespace
}  // namespace hcmm
