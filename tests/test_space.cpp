// Table 3 space tests: the measured peak store occupancy (sum over nodes of
// high-water words) against the paper's "overall space used" column.  The
// paper keeps leading operand terms only, so bands differ per algorithm:
// the replicating algorithms land on the formula, the low-replication ones
// sit slightly above (C blocks, in-flight copies), and the 3-D family pays
// a systematic 1.5x for partial products awaiting reduction — any
// executable realization does (EXPERIMENTS.md).

#include <gtest/gtest.h>

#include "hcmm/algo/api.hpp"
#include "hcmm/cost/model.hpp"
#include "hcmm/matrix/generate.hpp"

namespace hcmm {
namespace {

using algo::AlgoId;

struct SpaceCase {
  AlgoId id;
  std::size_t n;
  std::uint32_t p;
  double lo;
  double hi;
};

std::string space_name(const testing::TestParamInfo<SpaceCase>& info) {
  std::string name = algo::to_string(info.param.id);
  std::erase_if(name, [](char ch) { return ch == '(' || ch == ')'; });
  for (auto& ch : name) {
    if (ch == ' ' || ch == '-') ch = '_';
  }
  return name + "_n" + std::to_string(info.param.n) + "_p" +
         std::to_string(info.param.p);
}

class SpaceVsTable3 : public testing::TestWithParam<SpaceCase> {};

TEST_P(SpaceVsTable3, PeakWithinBand) {
  const auto [id, n, p, lo, hi] = GetParam();
  const auto alg = algo::make_algorithm(id);
  ASSERT_TRUE(alg->applicable(n, p));
  const PortModel port = alg->supports(PortModel::kOnePort)
                             ? PortModel::kOnePort
                             : PortModel::kMultiPort;
  const Matrix a = random_matrix(n, n, 51);
  const Matrix b = random_matrix(n, n, 52);
  Machine machine(Hypercube::with_nodes(p), port, CostParams{10, 1, 1});
  const auto result = alg->run(a, b, machine);
  const double measured =
      static_cast<double>(result.report.peak_words_total);
  const double formula = cost::space_words(id, static_cast<double>(n),
                                           static_cast<double>(p));
  EXPECT_GE(measured, lo * formula);
  EXPECT_LE(measured, hi * formula);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpaceVsTable3,
    testing::Values(
        SpaceCase{AlgoId::kSimple, 48, 64, 1.0, 1.10},
        SpaceCase{AlgoId::kSimple, 64, 64, 1.0, 1.10},
        SpaceCase{AlgoId::kCannon, 48, 64, 1.0, 1.12},
        SpaceCase{AlgoId::kCannon, 32, 16, 1.0, 1.12},
        SpaceCase{AlgoId::kHJE, 48, 64, 0.99, 1.05},
        SpaceCase{AlgoId::kBerntsen, 48, 64, 0.99, 1.05},
        SpaceCase{AlgoId::kBerntsen, 64, 512, 0.99, 1.05},
        // The 3-D family: 2n^2 cbrt(p) operands + n^2 cbrt(p) partials.
        SpaceCase{AlgoId::kDNS, 48, 64, 1.45, 1.55},
        SpaceCase{AlgoId::kDiag3D, 48, 64, 1.45, 1.55},
        SpaceCase{AlgoId::kDiag3D, 64, 512, 1.45, 1.55},
        SpaceCase{AlgoId::kAllTrans, 48, 64, 1.45, 1.55},
        SpaceCase{AlgoId::kAll3D, 48, 64, 1.45, 1.55},
        SpaceCase{AlgoId::kAll3D, 64, 512, 1.45, 1.55},
        // Rect grid: paper's n^2 sqrt(p) + n^2 p^{1/4} plus the same
        // partial-product overhead (relatively small here).
        SpaceCase{AlgoId::kAll3DRect, 32, 256, 0.95, 1.35},
        SpaceCase{AlgoId::kAll3DRect, 16, 16, 0.95, 1.45},
        // Combinations: 2 n^2 sigma operands + n^2 sigma partials.
        SpaceCase{AlgoId::kDiag3DCannon, 32, 128, 1.45, 1.55},
        SpaceCase{AlgoId::kDNSCannon, 32, 128, 1.45, 1.55}),
    space_name);

TEST(Space, CannonConstantInP) {
  // Cannon's selling point: storage independent of p (3 n^2 + lower order).
  const std::size_t n = 48;
  std::vector<double> peaks;
  for (const std::uint32_t p : {16u, 64u, 256u}) {
    const auto alg = algo::make_algorithm(AlgoId::kCannon);
    Machine machine(Hypercube::with_nodes(p), PortModel::kOnePort,
                    CostParams{10, 1, 1});
    const auto r = alg->run(random_matrix(n, n, 1), random_matrix(n, n, 2),
                            machine);
    peaks.push_back(static_cast<double>(r.report.peak_words_total));
  }
  EXPECT_NEAR(peaks[0], peaks[2], 0.15 * peaks[0])
      << "Cannon space must not grow with p";
}

TEST(Space, SimpleGrowsWithSqrtP) {
  const std::size_t n = 64;
  const auto alg = algo::make_algorithm(AlgoId::kSimple);
  std::vector<double> peaks;
  for (const std::uint32_t p : {16u, 64u, 256u}) {
    Machine machine(Hypercube::with_nodes(p), PortModel::kOnePort,
                    CostParams{10, 1, 1});
    const auto r = alg->run(random_matrix(n, n, 1), random_matrix(n, n, 2),
                            machine);
    peaks.push_back(static_cast<double>(r.report.peak_words_total));
  }
  // sqrt(p) quadruples from 16 to 256.
  EXPECT_NEAR(peaks[2] / peaks[0], 4.0, 0.5);
}

}  // namespace
}  // namespace hcmm
