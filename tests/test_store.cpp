// Tests for the per-node data store: item lifecycle, combine semantics,
// split/join round trips, and the word metering behind Table 3.

#include <gtest/gtest.h>

#include "hcmm/sim/store.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

const Tag kT1 = make_tag(1, 2, 3);
const Tag kT2 = make_tag(1, 2, 4);

TEST(MakeTag, FieldsArePacked) {
  EXPECT_NE(make_tag(1, 0, 0, 0), make_tag(0, 1, 0, 0));
  EXPECT_NE(make_tag(0, 0, 1, 0), make_tag(0, 0, 0, 1));
  EXPECT_EQ(make_tag(0), 0u);
  // Top byte must stay clear for the part-tag scheme.
  EXPECT_EQ(make_tag(0xFF, 0xFFFF, 0xFFFF, 0xFFFF) >> 56, 0u);
}

TEST(ChunkBounds, CoversExactly) {
  for (std::size_t total : {0u, 1u, 5u, 64u, 100u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t i = 0; i < parts; ++i) {
        const auto [lo, hi] = chunk_bounds(total, parts, i);
        EXPECT_EQ(lo, prev_end);
        EXPECT_LE(hi, total);
        covered += hi - lo;
        prev_end = hi;
      }
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ChunkBounds, NearlyEqual) {
  for (std::size_t i = 0; i < 3; ++i) {
    const auto [lo, hi] = chunk_bounds(10, 3, i);
    EXPECT_GE(hi - lo, 3u);
    EXPECT_LE(hi - lo, 4u);
  }
}

TEST(DataStore, PutGetErase) {
  DataStore st(4);
  st.put(0, kT1, {1.0, 2.0, 3.0});
  EXPECT_TRUE(st.has(0, kT1));
  EXPECT_FALSE(st.has(1, kT1));
  EXPECT_EQ(st.item_words(0, kT1), 3u);
  EXPECT_EQ((*st.get(0, kT1))[1], 2.0);
  st.erase(0, kT1);
  EXPECT_FALSE(st.has(0, kT1));
}

TEST(DataStore, SameTagDifferentNodesAreIndependent) {
  DataStore st(2);
  st.put(0, kT1, {1.0});
  st.put(1, kT1, {9.0});
  EXPECT_EQ((*st.get(0, kT1))[0], 1.0);
  EXPECT_EQ((*st.get(1, kT1))[0], 9.0);
}

TEST(DataStore, DuplicatePutRejected) {
  DataStore st(2);
  st.put(0, kT1, {1.0});
  EXPECT_THROW(st.put(0, kT1, {2.0}), CheckError);
}

TEST(DataStore, GetAbsentRejected) {
  DataStore st(2);
  EXPECT_THROW((void)st.get(0, kT1), CheckError);
  EXPECT_THROW(st.erase(1, kT1), CheckError);
}

TEST(DataStore, CombineAddsElementwise) {
  DataStore st(2);
  st.put(0, kT1, {1.0, 2.0});
  st.combine(0, kT1, make_payload({10.0, 20.0}));
  EXPECT_EQ((*st.get(0, kT1))[0], 11.0);
  EXPECT_EQ((*st.get(0, kT1))[1], 22.0);
}

TEST(DataStore, CombineSizeMismatchRejected) {
  DataStore st(1);
  st.put(0, kT1, {1.0, 2.0});
  EXPECT_THROW(st.combine(0, kT1, make_payload({1.0})), CheckError);
}

TEST(DataStore, SplitJoinRoundTrip) {
  DataStore st(1);
  std::vector<double> data;
  for (int i = 0; i < 10; ++i) data.push_back(i);
  st.put(0, kT1, data);
  const auto parts = st.split(0, kT1, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_FALSE(st.has(0, kT1));
  std::size_t total = 0;
  for (const Tag p : parts) total += st.item_words(0, p);
  EXPECT_EQ(total, 10u);
  st.join(0, parts, kT1);
  EXPECT_EQ(*st.get(0, kT1), data);
  for (const Tag p : parts) EXPECT_FALSE(st.has(0, p));
}

TEST(DataStore, SplitSmallerThanParts) {
  DataStore st(1);
  st.put(0, kT1, {1.0, 2.0});
  const auto parts = st.split(0, kT1, 5);
  ASSERT_EQ(parts.size(), 5u);
  st.join(0, parts, kT1);
  EXPECT_EQ((*st.get(0, kT1)), (std::vector<double>{1.0, 2.0}));
}

TEST(DataStore, SplitSizesExactBoundaries) {
  DataStore st(1);
  st.put(0, kT1, {0, 1, 2, 3, 4, 5, 6});
  const std::size_t sizes[] = {1, 4, 0, 2};
  const auto parts = st.split_sizes(0, kT1, sizes);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(*st.get(0, parts[0]), (std::vector<double>{0}));
  EXPECT_EQ(*st.get(0, parts[1]), (std::vector<double>{1, 2, 3, 4}));
  EXPECT_TRUE(st.get(0, parts[2])->empty());
  EXPECT_EQ(*st.get(0, parts[3]), (std::vector<double>{5, 6}));
  st.join(0, parts, kT1);
  EXPECT_EQ(*st.get(0, kT1), (std::vector<double>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(DataStore, SplitSizesMustSumToItem) {
  DataStore st(1);
  st.put(0, kT1, {1, 2, 3});
  const std::size_t bad[] = {1, 1};
  EXPECT_THROW((void)st.split_sizes(0, kT1, bad), CheckError);
  EXPECT_TRUE(st.has(0, kT1)) << "failed split must not consume the item";
}

TEST(DataStore, NestedSplitRejected) {
  DataStore st(1);
  st.put(0, kT1, {1.0, 2.0, 3.0, 4.0});
  const auto parts = st.split(0, kT1, 2);
  EXPECT_THROW(st.split(0, parts[0], 2), CheckError);
}

TEST(DataStore, WordMetering) {
  DataStore st(2);
  EXPECT_EQ(st.words(0), 0u);
  st.put(0, kT1, {1, 2, 3});
  st.put(0, kT2, {4, 5});
  EXPECT_EQ(st.words(0), 5u);
  EXPECT_EQ(st.peak_words(0), 5u);
  st.erase(0, kT1);
  EXPECT_EQ(st.words(0), 2u);
  EXPECT_EQ(st.peak_words(0), 5u) << "peak persists";
  EXPECT_EQ(st.total_peak_words(), 5u);
  st.reset_peaks();
  EXPECT_EQ(st.peak_words(0), 2u);
}

TEST(DataStore, PeakAcrossNodes) {
  DataStore st(3);
  st.put(0, kT1, std::vector<double>(10, 0.0));
  st.put(1, kT1, std::vector<double>(20, 0.0));
  st.put(2, kT1, std::vector<double>(30, 0.0));
  st.erase(2, kT1);
  EXPECT_EQ(st.total_peak_words(), 60u);
}

TEST(DataStore, NodeOutOfRangeRejected) {
  DataStore st(2);
  EXPECT_THROW(st.put(2, kT1, {1.0}), CheckError);
}

}  // namespace
}  // namespace hcmm
