// Unit tests for the support layer: bit utilities, Gray codes, the
// deterministic PRNG, contract checks and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "hcmm/support/bits.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/support/gray.hpp"
#include "hcmm/support/prng.hpp"
#include "hcmm/support/thread_pool.hpp"

namespace hcmm {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 20));
  EXPECT_FALSE(is_pow2((1u << 20) + 1));
}

TEST(Bits, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_THROW((void)ilog2(0), std::invalid_argument);
}

TEST(Bits, ExactLog2) {
  EXPECT_EQ(exact_log2(1), 0u);
  EXPECT_EQ(exact_log2(512), 9u);
  EXPECT_THROW((void)exact_log2(3), std::invalid_argument);
  EXPECT_THROW((void)exact_log2(0), std::invalid_argument);
}

TEST(Bits, BitOps) {
  EXPECT_EQ(bit_of(0b1010, 1), 1u);
  EXPECT_EQ(bit_of(0b1010, 0), 0u);
  EXPECT_EQ(flip_bit(0b1010, 0), 0b1011u);
  EXPECT_EQ(flip_bit(0b1010, 1), 0b1000u);
  EXPECT_EQ(popcount32(0b1011), 3u);
  EXPECT_EQ(hamming(0b1010, 0b0110), 2u);
}

TEST(Bits, ExactRoots) {
  EXPECT_EQ(exact_sqrt(0), 0u);
  EXPECT_EQ(exact_sqrt(64), 8u);
  EXPECT_EQ(exact_sqrt(1024), 32u);
  EXPECT_THROW((void)exact_sqrt(50), std::invalid_argument);
  EXPECT_EQ(exact_cbrt(8), 2u);
  EXPECT_EQ(exact_cbrt(512), 8u);
  EXPECT_EQ(exact_cbrt(4096), 16u);
  EXPECT_THROW((void)exact_cbrt(9), std::invalid_argument);
}

TEST(Gray, EncodeDecodeRoundTrip) {
  for (std::uint32_t k = 0; k < 4096; ++k) {
    EXPECT_EQ(gray_decode(gray_encode(k)), k);
  }
}

TEST(Gray, AdjacentCodewordsDifferInOneBit) {
  for (std::uint32_t k = 0; k + 1 < 4096; ++k) {
    EXPECT_EQ(popcount32(gray_encode(k) ^ gray_encode(k + 1)), 1u);
  }
}

TEST(Gray, SequenceIsHamiltonianRing) {
  for (std::uint32_t d = 1; d <= 8; ++d) {
    const auto seq = gray_sequence(d);
    ASSERT_EQ(seq.size(), 1u << d);
    std::set<std::uint32_t> seen(seq.begin(), seq.end());
    EXPECT_EQ(seen.size(), seq.size()) << "all codewords distinct";
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const auto next = seq[(i + 1) % seq.size()];
      EXPECT_EQ(popcount32(seq[i] ^ next), 1u) << "d=" << d << " i=" << i;
    }
  }
}

TEST(Gray, ChangeBitMatchesSequence) {
  for (std::uint32_t d = 1; d <= 8; ++d) {
    const auto seq = gray_sequence(d);
    for (std::uint32_t k = 0; k < (1u << d); ++k) {
      const auto next = seq[(k + 1) % seq.size()];
      EXPECT_EQ(1u << gray_change_bit(k, d), seq[k] ^ next);
    }
  }
}

TEST(Gray, EncodeIsGf2Linear) {
  // Linearity over GF(2) is what lets coordinate XOR-shifts translate to
  // node-space XOR-shifts in the grid embedding.
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(1u << 16));
    const auto b = static_cast<std::uint32_t>(rng.next_below(1u << 16));
    EXPECT_EQ(gray_encode(a ^ b), gray_encode(a) ^ gray_encode(b));
  }
}

TEST(Prng, Deterministic) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, SeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Prng, DoubleInUnitInterval) {
  Prng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, UniformRange) {
  Prng rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-2.0, 2.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 2.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.0, 0.1);
}

TEST(Prng, NextBelowBounds) {
  Prng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Check, ThrowsWithMessage) {
  try {
    HCMM_CHECK(1 == 2, "custom detail " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(HCMM_CHECK(true, "never"));
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 100; ++i) jobs.emplace_back([&count] { ++count; });
  pool.run_batch(std::move(jobs));
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DisjointWritesAreComplete) {
  ThreadPool pool(3);
  std::vector<int> out(257, 0);
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < out.size(); ++i) {
    jobs.emplace_back([&out, i] { out[i] = static_cast<int>(i) + 1; });
  }
  pool.run_batch(std::move(jobs));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 10; ++i) jobs.emplace_back([] {});
  jobs.emplace_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) jobs.emplace_back([] {});
  EXPECT_THROW(pool.run_batch(std::move(jobs)), std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 20; ++i) jobs.emplace_back([&count] { ++count; });
    pool.run_batch(std::move(jobs));
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.run_batch({}));
}

}  // namespace
}  // namespace hcmm
