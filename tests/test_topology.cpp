// Tests for the hypercube topology, subcubes, and the 2-D/3-D grid
// embeddings — including the two properties the paper's algorithms rely on:
// every grid chain is a subcube, and unit steps along a grid axis are
// single hypercube links.

#include <gtest/gtest.h>

#include <set>

#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm {
namespace {

TEST(Hypercube, SizesAndDims) {
  EXPECT_EQ(Hypercube(0).size(), 1u);
  EXPECT_EQ(Hypercube(3).size(), 8u);
  EXPECT_EQ(Hypercube::with_nodes(64).dim(), 6u);
  EXPECT_THROW((void)Hypercube::with_nodes(63), CheckError);
  EXPECT_THROW(Hypercube(21), CheckError);
}

TEST(Hypercube, NeighborsFlipOneBit) {
  const Hypercube hc(4);
  for (NodeId n = 0; n < hc.size(); ++n) {
    const auto nbrs = hc.neighbors(n);
    ASSERT_EQ(nbrs.size(), 4u);
    std::set<NodeId> uniq(nbrs.begin(), nbrs.end());
    EXPECT_EQ(uniq.size(), 4u);
    for (const NodeId m : nbrs) {
      EXPECT_TRUE(hc.are_neighbors(n, m));
      EXPECT_EQ(hc.distance(n, m), 1u);
    }
  }
}

TEST(Hypercube, NotNeighborsAtDistanceTwo) {
  const Hypercube hc(4);
  EXPECT_FALSE(hc.are_neighbors(0b0000, 0b0011));
  EXPECT_FALSE(hc.are_neighbors(5, 5));
  EXPECT_EQ(hc.distance(0b0000, 0b1111), 4u);
}

TEST(Hypercube, LinkCount) {
  EXPECT_EQ(Hypercube(0).link_count(), 0u);
  EXPECT_EQ(Hypercube(3).link_count(), 12u);   // 3 * 8 / 2
  EXPECT_EQ(Hypercube(10).link_count(), 5120u);
}

TEST(Hypercube, BoundsChecked) {
  const Hypercube hc(3);
  EXPECT_THROW((void)hc.neighbor(8, 0), CheckError);
  EXPECT_THROW((void)hc.neighbor(0, 3), CheckError);
}

TEST(Subcube, EnumeratesMembers) {
  // Free dims {1, 3} of a 4-cube anchored at 0b0101 -> members vary bits 1,3.
  const Subcube sc(0b0101, 0b1010);
  EXPECT_EQ(sc.dim(), 2u);
  EXPECT_EQ(sc.size(), 4u);
  EXPECT_EQ(sc.node_at(0), 0b0101u);
  EXPECT_EQ(sc.node_at(1), 0b0111u);
  EXPECT_EQ(sc.node_at(2), 0b1101u);
  EXPECT_EQ(sc.node_at(3), 0b1111u);
  EXPECT_EQ(sc.dim_bit(0), 1u);
  EXPECT_EQ(sc.dim_bit(1), 3u);
}

TEST(Subcube, RankRoundTrip) {
  const Subcube sc(0b0001, 0b0110);
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    EXPECT_EQ(sc.rank_of(sc.node_at(r)), r);
    EXPECT_TRUE(sc.contains(sc.node_at(r)));
  }
  EXPECT_FALSE(sc.contains(0b0000));
  EXPECT_THROW((void)sc.rank_of(0b0000), CheckError);
}

TEST(Subcube, AdjacentRanksDifferInOneGlobalBit) {
  const Subcube sc(0b10000, 0b01101);
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    for (std::uint32_t k = 0; k < sc.dim(); ++k) {
      const NodeId a = sc.node_at(r);
      const NodeId b = sc.node_at(r ^ (1u << k));
      EXPECT_EQ(popcount32(a ^ b), 1u);
    }
  }
}

TEST(Grid2D, CoordsRoundTrip) {
  const Grid2D grid(64);
  EXPECT_EQ(grid.q(), 8u);
  std::set<NodeId> seen;
  for (std::uint32_t r = 0; r < grid.q(); ++r) {
    for (std::uint32_t c = 0; c < grid.q(); ++c) {
      const NodeId n = grid.node(r, c);
      EXPECT_TRUE(seen.insert(n).second) << "node reused";
      const auto [rr, cc] = grid.coords(n);
      EXPECT_EQ(rr, r);
      EXPECT_EQ(cc, c);
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Grid2D, RowAndColChainsAreSubcubes) {
  const Grid2D grid(64);
  for (std::uint32_t r = 0; r < grid.q(); ++r) {
    const Subcube row = grid.row_chain(r);
    EXPECT_EQ(row.size(), grid.q());
    for (std::uint32_t c = 0; c < grid.q(); ++c) {
      EXPECT_TRUE(row.contains(grid.node(r, c)))
          << "row " << r << " col " << c;
    }
  }
  for (std::uint32_t c = 0; c < grid.q(); ++c) {
    const Subcube col = grid.col_chain(c);
    EXPECT_EQ(col.size(), grid.q());
    for (std::uint32_t r = 0; r < grid.q(); ++r) {
      EXPECT_TRUE(col.contains(grid.node(r, c)));
    }
  }
}

TEST(Grid2D, UnitStepsAreSingleLinks) {
  const Grid2D grid(256);
  const Hypercube& hc = grid.cube();
  for (std::uint32_t r = 0; r < grid.q(); ++r) {
    for (std::uint32_t c = 0; c < grid.q(); ++c) {
      // Circular: last wraps to first, still one link (BRGC ring property).
      EXPECT_TRUE(hc.are_neighbors(grid.node(r, c),
                                   grid.node(r, (c + 1) % grid.q())));
      EXPECT_TRUE(hc.are_neighbors(grid.node(r, c),
                                   grid.node((r + 1) % grid.q(), c)));
    }
  }
}

TEST(Grid2D, RejectsNonSquare) {
  EXPECT_THROW(Grid2D(32), std::invalid_argument);  // not a perfect square
  EXPECT_THROW(Grid2D(36), std::invalid_argument);  // square but q not pow2
}

TEST(Grid2D, SingleNode) {
  const Grid2D grid(1);
  EXPECT_EQ(grid.node(0, 0), 0u);
  EXPECT_EQ(grid.row_chain(0).size(), 1u);
}

TEST(Grid3D, CoordsRoundTrip) {
  const Grid3D grid(512);
  EXPECT_EQ(grid.q(), 8u);
  std::set<NodeId> seen;
  for (std::uint32_t i = 0; i < grid.q(); ++i) {
    for (std::uint32_t j = 0; j < grid.q(); ++j) {
      for (std::uint32_t k = 0; k < grid.q(); ++k) {
        const NodeId n = grid.node(i, j, k);
        EXPECT_TRUE(seen.insert(n).second);
        const auto ijk = grid.coords(n);
        EXPECT_EQ(ijk[0], i);
        EXPECT_EQ(ijk[1], j);
        EXPECT_EQ(ijk[2], k);
      }
    }
  }
  EXPECT_EQ(seen.size(), 512u);
}

TEST(Grid3D, ChainsAreSubcubesAlongEachAxis) {
  const Grid3D grid(64);
  for (std::uint32_t a = 0; a < grid.q(); ++a) {
    for (std::uint32_t b = 0; b < grid.q(); ++b) {
      const Subcube x = grid.x_chain(a, b);
      const Subcube y = grid.y_chain(a, b);
      const Subcube z = grid.z_chain(a, b);
      for (std::uint32_t t = 0; t < grid.q(); ++t) {
        EXPECT_TRUE(x.contains(grid.node(t, a, b)));
        EXPECT_TRUE(y.contains(grid.node(a, t, b)));
        EXPECT_TRUE(z.contains(grid.node(a, b, t)));
      }
    }
  }
}

TEST(Grid3D, ChainsPartitionTheMachine) {
  const Grid3D grid(512);
  std::set<NodeId> all;
  for (std::uint32_t j = 0; j < grid.q(); ++j) {
    for (std::uint32_t k = 0; k < grid.q(); ++k) {
      for (const NodeId n : grid.x_chain(j, k).nodes()) {
        EXPECT_TRUE(all.insert(n).second) << "x-chains must be disjoint";
      }
    }
  }
  EXPECT_EQ(all.size(), grid.p());
}

TEST(Grid3D, UnitStepsAreSingleLinks) {
  const Grid3D grid(512);
  const Hypercube& hc = grid.cube();
  for (std::uint32_t i = 0; i < grid.q(); ++i) {
    EXPECT_TRUE(hc.are_neighbors(grid.node(i, 0, 0),
                                 grid.node((i + 1) % grid.q(), 0, 0)));
    EXPECT_TRUE(hc.are_neighbors(grid.node(0, i, 0),
                                 grid.node(0, (i + 1) % grid.q(), 0)));
    EXPECT_TRUE(hc.are_neighbors(grid.node(0, 0, i),
                                 grid.node(0, 0, (i + 1) % grid.q())));
  }
}

TEST(Grid3D, FLinearization) {
  const Grid3D grid(64);
  EXPECT_EQ(grid.f(0, 0), 0u);
  EXPECT_EQ(grid.f(1, 2), 6u);
  EXPECT_EQ(grid.f(3, 3), 15u);
  EXPECT_THROW((void)grid.f(4, 0), CheckError);
}

TEST(Grid3D, RejectsNonCube) {
  EXPECT_THROW(Grid3D(16), std::invalid_argument);
  EXPECT_THROW(Grid3D(27), std::invalid_argument);  // cube but q not pow2
}

}  // namespace
}  // namespace hcmm
