// Socket transport tests: the wire codec, backend-agnostic bit identity of
// the SPMD ports, deterministic lossy replay, and the located error paths
// of the failure detector.
//
// Everything here runs all ranks local to one process (loopback sockets,
// one endpoint per rank) — the multi-process path is exercised by the
// hcmm_rank harness gates (spmd_socket_identity*, socket_kill_recovery).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hcmm/fault/plan.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/runtime/socket_transport.hpp"
#include "hcmm/runtime/spmd_matmul.hpp"
#include "hcmm/runtime/team.hpp"
#include "hcmm/runtime/wire.hpp"

namespace hcmm {
namespace {

using namespace std::chrono_literals;

// --- wire codec ----------------------------------------------------------

rt::wire::FrameHeader sample_header() {
  rt::wire::FrameHeader h;
  h.kind = rt::wire::FrameKind::kData;
  h.from = 3;
  h.to = 5;
  h.epoch = 7;
  h.run_gen = 11;
  h.seq = 13;
  h.ack = 12;
  h.tag = (0x0Au << 16) + 42;
  h.rows = 8;
  h.cols = 16;
  h.payload_len = 8 * 16 * sizeof(double);
  h.payload_crc = 0xDEADBEEF;
  return h;
}

TEST(Wire, HeaderRoundTripsEveryField) {
  const rt::wire::FrameHeader h = sample_header();
  std::uint8_t buf[rt::wire::kHeaderSize];
  rt::wire::encode_header(h, buf);
  const auto back = rt::wire::decode_header(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, h.kind);
  EXPECT_EQ(back->from, h.from);
  EXPECT_EQ(back->to, h.to);
  EXPECT_EQ(back->epoch, h.epoch);
  EXPECT_EQ(back->run_gen, h.run_gen);
  EXPECT_EQ(back->seq, h.seq);
  EXPECT_EQ(back->ack, h.ack);
  EXPECT_EQ(back->tag, h.tag);
  EXPECT_EQ(back->rows, h.rows);
  EXPECT_EQ(back->cols, h.cols);
  EXPECT_EQ(back->payload_len, h.payload_len);
  EXPECT_EQ(back->payload_crc, h.payload_crc);
}

TEST(Wire, DecodeRejectsAnySingleFlippedHeaderBit) {
  const rt::wire::FrameHeader h = sample_header();
  std::uint8_t buf[rt::wire::kHeaderSize];
  rt::wire::encode_header(h, buf);
  // Flip one bit in every byte; the header CRC (or the magic) must catch
  // each corruption.  Sampling every byte keeps the codec honest about
  // covering the whole header, not just the fields a test happens to read.
  for (std::size_t i = 0; i < rt::wire::kHeaderSize; ++i) {
    buf[i] ^= 0x10;
    EXPECT_FALSE(rt::wire::decode_header(buf).has_value())
        << "flip at byte " << i << " went undetected";
    buf[i] ^= 0x10;
  }
  EXPECT_TRUE(rt::wire::decode_header(buf).has_value());
}

TEST(Wire, DecodeRejectsBadKindAndOversizedPayload) {
  rt::wire::FrameHeader h = sample_header();
  std::uint8_t buf[rt::wire::kHeaderSize];

  h.kind = static_cast<rt::wire::FrameKind>(9);
  rt::wire::encode_header(h, buf);
  EXPECT_FALSE(rt::wire::decode_header(buf).has_value());

  h = sample_header();
  h.payload_len = rt::wire::kMaxPayload + 1;
  rt::wire::encode_header(h, buf);
  EXPECT_FALSE(rt::wire::decode_header(buf).has_value());
}

TEST(Wire, Crc32MatchesTheIeeeReferenceVector) {
  // The canonical check value for CRC-32/ISO-HDLC: crc("123456789").
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(rt::wire::crc32(digits), 0xCBF43926u);
  EXPECT_EQ(rt::wire::crc32({}), 0u);
}

// --- backend-parameterized bit identity ----------------------------------

bool bit_identical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

fault::WireFaultSpec mild_loss() {
  fault::WireFaultSpec w;
  w.seed = 0xC0FFEE;
  w.drop_prob = 0.05;
  w.dup_prob = 0.05;
  w.reorder_prob = 0.05;
  w.flip_prob = 0.03;
  return w;
}

struct Backend {
  const char* label;
  std::unique_ptr<rt::Team> (*make)(std::uint32_t ranks);
};

std::unique_ptr<rt::Team> make_mailbox(std::uint32_t ranks) {
  return std::make_unique<rt::Team>(ranks, 10s);
}
std::unique_ptr<rt::Team> make_socket(std::uint32_t ranks) {
  return std::make_unique<rt::Team>(rt::make_socket_transport(ranks, 10s),
                                    10s);
}
std::unique_ptr<rt::Team> make_lossy(std::uint32_t ranks) {
  return std::make_unique<rt::Team>(
      rt::make_socket_transport(ranks, 10s, mild_loss()), 10s);
}

constexpr Backend kBackends[] = {
    {"mailbox", &make_mailbox},
    {"socket", &make_socket},
    {"socket+lossy", &make_lossy},
};

TEST(TransportIdentity, CannonIsBitIdenticalAcrossBackends) {
  const Matrix a = random_matrix(16, 16, 31);
  const Matrix b = random_matrix(16, 16, 32);
  rt::Team ref(4, 10s);
  const Matrix want = rt::spmd_cannon(ref, a, b);
  for (const Backend& be : kBackends) {
    auto team = be.make(4);
    EXPECT_TRUE(bit_identical(rt::spmd_cannon(*team, a, b), want))
        << "backend " << be.label;
    EXPECT_STREQ(team->transport().name(), be.label);
  }
}

TEST(TransportIdentity, DimensionThreeSchedulesMatchOnAllBackends) {
  // d = 3 hypercube (p = 8): one one-port-style schedule (DNS, single
  // dimension active per step) and one multiport-style schedule (all3d,
  // every dimension's links busy in the all-gather phases).
  const Matrix a = random_matrix(16, 16, 33);
  const Matrix b = random_matrix(16, 16, 34);
  rt::Team ref(8, 10s);
  const Matrix want_dns = rt::spmd_dns(ref, a, b);
  const Matrix want_all3d = rt::spmd_all3d(ref, a, b);
  for (const Backend& be : kBackends) {
    auto team = be.make(8);
    EXPECT_TRUE(bit_identical(rt::spmd_dns(*team, a, b), want_dns))
        << "dns over " << be.label;
    EXPECT_TRUE(bit_identical(rt::spmd_all3d(*team, a, b), want_all3d))
        << "all3d over " << be.label;
  }
}

TEST(TransportIdentity, LossyRunsAreSeedDeterministic) {
  const Matrix a = random_matrix(16, 16, 35);
  const Matrix b = random_matrix(16, 16, 36);
  rt::WireStats first{};
  for (int round = 0; round < 2; ++round) {
    rt::Team team(rt::make_socket_transport(4, 10s, mild_loss()), 10s);
    const Matrix c = rt::spmd_cannon(team, a, b);
    const rt::WireStats ws = team.wire_stats();
    // The fault process is a pure hash of (seed, channel, seq, attempt),
    // so two fresh transports replay the same drops/dups/flips — as long as
    // the *attempt* streams match.  A scheduler stall past the RTO floor
    // fires a spurious retransmission, which legitimately draws extra
    // faults, so the counter comparison is gated on equal retransmits.
    if (round == 0) {
      first = ws;
      EXPECT_GT(ws.drops + ws.dups + ws.reorders + ws.flips, 0u)
          << "mild_loss spec did not disturb the run at all";
    } else if (ws.retransmits == first.retransmits) {
      EXPECT_EQ(ws.drops, first.drops);
      EXPECT_EQ(ws.dups, first.dups);
      EXPECT_EQ(ws.reorders, first.reorders);
      EXPECT_EQ(ws.flips, first.flips);
    }
    rt::Team ref(4, 10s);
    EXPECT_TRUE(bit_identical(c, rt::spmd_cannon(ref, a, b)));
  }
}

// --- failure paths over the socket backend -------------------------------

TEST(TransportFailure, InjectedDeathIsLocatedAndRestartRecovers) {
  rt::Team team(rt::make_socket_transport(4, 10s, mild_loss()), 10s);
  const Matrix a = random_matrix(16, 16, 37);
  const Matrix b = random_matrix(16, 16, 38);
  team.inject_rank_death(2);
  try {
    (void)rt::spmd_cannon(team, a, b);
    FAIL() << "injected death was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos)
        << e.what();
  }
  team.clear_injections();
  // The restart rung over the *same* transport: begin_run revives the
  // run-scoped death and stale notices from the aborted run must not
  // re-kill rank 2 (they are discarded by run generation).
  rt::Team ref(4, 10s);
  EXPECT_TRUE(
      bit_identical(rt::spmd_cannon(team, a, b), rt::spmd_cannon(ref, a, b)));
}

TEST(TransportFailure, RecvFromDeadRankNamesBothParties) {
  rt::Team team(rt::make_socket_transport(3, 10s), 10s);
  team.inject_rank_death(1);
  try {
    team.run([](rt::Rank& r) {
      // Rank 1 dies on its first team op; rank 0's recv must then name
      // both the waiter and the dead sender rather than spin to timeout.
      if (r.id() == 1) r.send(0, 9, Matrix(2, 2));
      if (r.id() == 0) (void)r.recv(1, 9);
    });
    FAIL() << "death did not abort the run";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }
}

TEST(TransportStats, CleanRunMovesFramesAndNoFaultCounters) {
  rt::Team team(rt::make_socket_transport(2, 10s), 10s);
  team.run([](rt::Rank& r) {
    Matrix m(4, 4);
    if (r.id() == 0) {
      r.send(1, 1, m);
      (void)r.recv(1, 2);
    } else {
      (void)r.recv(0, 1);
      r.send(0, 2, m);
    }
  });
  const rt::WireStats ws = team.wire_stats();
  EXPECT_GE(ws.frames_sent, 2u);
  EXPECT_GE(ws.payload_bytes, 2 * 16 * sizeof(double));
  EXPECT_EQ(ws.drops, 0u);
  EXPECT_EQ(ws.dups, 0u);
  EXPECT_EQ(ws.flips, 0u);
  EXPECT_EQ(ws.crc_rejects, 0u);
  EXPECT_EQ(ws.stale_discards, 0u);
}

}  // namespace
}  // namespace hcmm
