// hcmm_calibrate: measure the real (t_s, t_w) of each transport backend and
// close the loop with the paper's Table 2 cost model.
//
// For every requested backend (mailbox, socket, socket+lossy) the tool runs
// the mpptest-style ping-pong sweep from analysis/calibration.hpp — warmup
// iterations, `iters` timed round trips per rep, minimum over reps, least
// squares through the per-size one-way times — and then re-runs every SPMD
// algorithm port over that backend, diffing wall clock against the Table 2
// closed form evaluated at the *measured* constants.  The output is one
// JSON document per backend (tolerance-banded predicted-vs-measured rows;
// see the header for why the band is wide), concatenated into a JSON array.
//
// Exit status is nonzero when any row of any backend falls outside its
// band, which is what the `transport_calibration` ctest gate and the CI
// runtime-soak job key on.
//
// Usage: hcmm_calibrate [--backends mailbox,socket,lossy] [--quick]
//                       [--out FILE] [--band-lo X] [--band-hi X]

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hcmm/analysis/calibration.hpp"
#include "hcmm/fault/plan.hpp"
#include "hcmm/runtime/socket_transport.hpp"
#include "hcmm/runtime/team.hpp"
#include "hcmm/support/check.hpp"

namespace {

using namespace hcmm;

constexpr const char* kUsage =
    "usage: hcmm_calibrate [--backends mailbox,socket,lossy] [--quick]\n"
    "                      [--out FILE] [--band-lo X] [--band-hi X]\n";

constexpr std::chrono::milliseconds kHorizon{30000};

[[nodiscard]] analysis::TeamFactory make_factory(const std::string& backend) {
  if (backend == "mailbox") {
    return [](std::uint32_t ranks) {
      return std::make_unique<rt::Team>(ranks, kHorizon);
    };
  }
  if (backend == "socket") {
    return [](std::uint32_t ranks) {
      return std::make_unique<rt::Team>(
          rt::make_socket_transport(ranks, kHorizon), kHorizon);
    };
  }
  if (backend == "lossy") {
    return [](std::uint32_t ranks) {
      fault::WireFaultSpec wire;
      wire.seed = 0x5eed;
      wire.drop_prob = 0.02;
      wire.dup_prob = 0.02;
      wire.reorder_prob = 0.02;
      return std::make_unique<rt::Team>(
          rt::make_socket_transport(ranks, kHorizon, wire), kHorizon);
    };
  }
  HCMM_CHECK(false, "hcmm_calibrate: unknown backend \"" << backend << "\"");
}

[[nodiscard]] std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> backends = {"mailbox", "socket"};
    std::string out_path;
    analysis::CalibrationConfig cfg;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        HCMM_CHECK(i + 1 < argc, "hcmm_calibrate: " << arg << " needs a value");
        return argv[++i];
      };
      if (arg == "--backends") {
        backends = split_csv(value());
      } else if (arg == "--quick") {
        quick = true;
      } else if (arg == "--out") {
        out_path = value();
      } else if (arg == "--band-lo") {
        cfg.band_lo = std::stod(value());
      } else if (arg == "--band-hi") {
        cfg.band_hi = std::stod(value());
      } else {
        std::cerr << kUsage;
        HCMM_CHECK(false, "hcmm_calibrate: unknown argument " << arg);
      }
    }
    if (quick) {
      cfg.warmup = 2;
      cfg.iters = 8;
      cfg.reps = 3;
      cfg.words = {1, 64, 1024};
    }

    bool all_within = true;
    std::ostringstream json;
    json << "[";
    for (std::size_t i = 0; i < backends.size(); ++i) {
      const analysis::Table2CalReport report =
          analysis::table2_report(make_factory(backends[i]), cfg);
      all_within = all_within && report.all_within;
      std::cerr << "calibrated " << report.cal.backend
                << ": ts=" << report.cal.ts_us
                << "us tw=" << report.cal.tw_us
                << "us/word tc=" << report.cal.tc_us << "us [gemm "
                << report.cal.gemm_kernel << "/" << report.cal.gemm_isa
                << ", oracle tc=" << report.cal.tc_oracle_us << "us] ("
                << report.rows.size() << " table2 rows, "
                << (report.all_within ? "all within band" : "OUT OF BAND")
                << ")\n";
      json << (i != 0 ? "," : "") << "\n" << analysis::to_json(report);
    }
    json << "]\n";

    if (out_path.empty()) {
      std::cout << json.str();
    } else {
      std::ofstream out(out_path);
      HCMM_CHECK(out.good(), "hcmm_calibrate: cannot write " << out_path);
      out << json.str();
      std::cout << "wrote " << out_path << "\n";
    }
    return all_within ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "hcmm_calibrate: " << e.what() << "\n";
    return 1;
  }
}
