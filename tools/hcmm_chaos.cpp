// hcmm_chaos: fault-injection campaign over the whole algorithm registry,
// plus a coverage-guided fuzzer for the recovery ladder.
//
// Scenario sweep (default mode).  Drives every registered matrix-
// multiplication algorithm on 8- and 64-node machines under both port models
// through every chaos scenario (empty plan, single link failure, transient
// drops, latency spikes, a dead node, and a combined storm — see
// fault/scenarios.hpp), then repeats the sweep with every algorithm wrapped
// in abft::protect against the ABFT catalogue: silent corruption the
// transport CRC cannot see, and node deaths scheduled mid-run at each
// phase-boundary round of the clean run.  Every run must end in one of
// exactly two acceptable states:
//
//   1. a numerically correct product (verified against the serial gemm), or
//   2. a clean fault::FaultAbort carrying a located FaultEvent diagnosis
//      (only possible for scenarios with a stochastic transient model).
//
// Anything else — wrong product, unlocated exception, crash — is a FAIL and
// the tool exits nonzero, so the ctest/CI wiring (`chaos_campaign`) turns a
// recovery regression into a build failure.  The baseline-empty-plan
// scenario additionally asserts the zero-overhead guarantee: its measured
// report must be bit-identical to a plan-free run, and a protected run must
// report zero ABFT detections on top.  Scheduled-death scenarios must end
// correct with at least one checkpoint rollback or restart — the death is
// not optional.
//
// Fuzz mode (--fuzz N, replaces the scenario sweep).  Starts from the
// hand-tuned second-order seed corpus (fault::fuzz_seed_corpus), then runs N
// seeded mutation iterations; plans that light up novel recovery-path
// features (ladder rungs, FaultKinds, escalation transitions — see
// fault/fuzz.hpp) join the corpus.  Every completed run is *certified*: its
// captured trace is re-run through the alias/lifetime, happens-before and
// semantic exactly-once passes, so a recovery that leaves the data plane in
// a corrupt state fails the campaign even when the product happens to be
// right.  A located abort is acceptable only when the plan can plausibly
// force that abort kind (may_abort below).  Failing plans are delta-debug
// shrunk to minimal reproducers (spec strings, written to --repro-dir).
// The campaign fails unless coverage reaches 90% of the feature universe.
//
// Usage: hcmm_chaos [--json] [--out FILE] [--seed S] [--list-scenarios]
//                   [--fuzz N] [--budget N] [--shrink N]
//                   [--repro-dir DIR] [--coverage-out FILE]

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "hcmm/abft/protect.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/analysis/semantic.hpp"
#include "hcmm/analysis/trace.hpp"
#include "hcmm/fault/fuzz.hpp"
#include "hcmm/fault/scenarios.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/runtime/socket_transport.hpp"
#include "hcmm/runtime/spmd_matmul.hpp"
#include "hcmm/sim/report_io.hpp"

namespace {

using namespace hcmm;

constexpr const char* kUsage =
    "usage: hcmm_chaos [--json] [--out FILE] [--seed S] [--list-scenarios]\n"
    "                  [--fuzz N] [--budget N] [--shrink N]\n"
    "                  [--repro-dir DIR] [--coverage-out FILE]\n";

/// Smallest problem size the algorithm accepts on @p p nodes, 0 if none.
std::size_t pick_n(const algo::DistributedMatmul& alg, std::uint32_t p) {
  for (const std::size_t n : {4u, 8u, 16u, 24u, 32u, 48u, 64u, 96u, 128u, 256u}) {
    if (alg.applicable(n, p)) return n;
  }
  return 0;
}

enum class Outcome : std::uint8_t { kCorrect, kCleanAbort, kFail };

struct RunRecord {
  std::string context;
  std::string scenario;
  Outcome outcome = Outcome::kFail;
  std::string detail;  // abort diagnosis or failure description
  PhaseStats totals;   // zeroed on aborts
  std::uint64_t recoveries = 0;
  std::uint64_t restarts = 0;
  std::string spec;    // fuzz runs: the plan's reproducer spec
};

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: return "correct";
    case Outcome::kCleanAbort: return "clean-abort";
    case Outcome::kFail: return "FAIL";
  }
  return "?";
}

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

std::string campaign_json(const std::vector<RunRecord>& records,
                          std::size_t fails, std::size_t skipped,
                          const std::string& fuzz_block) {
  std::ostringstream os;
  std::size_t correct = 0;
  std::size_t aborted = 0;
  for (const RunRecord& r : records) {
    correct += r.outcome == Outcome::kCorrect;
    aborted += r.outcome == Outcome::kCleanAbort;
  }
  os << "{\"runs\": " << records.size() << ", \"correct\": " << correct
     << ", \"clean_aborts\": " << aborted << ", \"failures\": " << fails
     << ", \"skipped\": " << skipped << ", \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    if (i != 0) os << ", ";
    os << "{\"context\": ";
    json_escape(os, r.context);
    os << ", \"scenario\": ";
    json_escape(os, r.scenario);
    os << ", \"outcome\": \"" << to_string(r.outcome) << "\", \"detail\": ";
    json_escape(os, r.detail);
    os << ", \"retries\": " << r.totals.retries
       << ", \"reroutes\": " << r.totals.reroutes
       << ", \"extra_hops\": " << r.totals.extra_hops
       << ", \"fault_startups\": " << r.totals.fault_startups
       << ", \"fault_delay\": " << r.totals.fault_delay
       << ", \"silent_corruptions\": " << r.totals.silent_corruptions
       << ", \"abft_detected\": " << r.totals.abft_detected
       << ", \"abft_corrected\": " << r.totals.abft_corrected
       << ", \"recoveries\": " << r.recoveries
       << ", \"restarts\": " << r.restarts;
    if (!r.spec.empty()) {
      os << ", \"spec\": ";
      json_escape(os, r.spec);
    }
    os << "}";
  }
  os << "]";
  if (!fuzz_block.empty()) os << ", \"fuzz\": " << fuzz_block;
  os << "}";
  return os.str();
}

/// Reports must agree field-for-field — the zero-overhead guarantee for an
/// installed-but-empty plan.  Doubles are compared exactly on purpose.
std::string report_mismatch(const SimReport& base, const SimReport& with) {
  if (base.phases.size() != with.phases.size()) return "phase count differs";
  for (std::size_t i = 0; i < base.phases.size(); ++i) {
    const PhaseStats& a = base.phases[i];
    const PhaseStats& b = with.phases[i];
    if (a.rounds != b.rounds) return a.name + ": a-term differs";
    if (a.word_cost != b.word_cost) return a.name + ": b-term differs";
    if (a.messages != b.messages) return a.name + ": messages differ";
    if (a.link_words != b.link_words) return a.name + ": link_words differ";
    if (a.flops != b.flops) return a.name + ": flops differ";
    if (a.comm_time != b.comm_time) return a.name + ": comm_time differs";
    if (a.compute_time != b.compute_time) {
      return a.name + ": compute_time differs";
    }
    if (a.checkpoints != b.checkpoints) return a.name + ": checkpoints differ";
    if (a.checkpoint_cost != b.checkpoint_cost) {
      return a.name + ": checkpoint_cost differs";
    }
    if (b.faulted()) return a.name + ": fault counters nonzero";
  }
  if (base.async_makespan != with.async_makespan) {
    return "async_makespan differs";
  }
  if (base.peak_words_total != with.peak_words_total) {
    return "peak_words_total differs";
  }
  if (!with.fault_events.empty()) return "fault events recorded";
  if (with.recoveries != 0) return "recoveries recorded";
  if (with.restarts != 0) return "restarts recorded";
  return {};
}

/// round_seq_ value at the start of each measured phase of a *clean* run:
/// PhaseStats::rounds counts one start-up per executed round plus one per
/// checkpoint, so subtracting the checkpoints recovers the executed-round
/// sequence the kill_at triggers key on.
std::vector<std::uint64_t> phase_boundary_rounds(const SimReport& clean) {
  std::vector<std::uint64_t> out;
  std::uint64_t executed = 0;
  for (const PhaseStats& ph : clean.phases) {
    out.push_back(executed);
    executed += ph.rounds - ph.checkpoints;
  }
  out.push_back(executed);  // total — one past the last triggerable round
  return out;
}

struct Campaign {
  std::vector<RunRecord> records;
  std::size_t fails = 0;
  std::size_t skipped = 0;
};

/// Run one (algorithm, scenario) combination and judge the outcome.
/// @p protected_run switches on the ABFT acceptance rules: empty plans must
/// additionally report zero ABFT activity, and plans whose only faults are
/// scheduled deaths / checkpoint corruption must end correct after at least
/// one rollback or restart.
void run_scenario(Campaign& camp, const algo::DistributedMatmul& alg,
                  const Hypercube& cube, PortModel port, const Matrix& a,
                  const Matrix& b, const Matrix& want,
                  const SimReport& clean_report, const fault::Scenario& sc,
                  const std::string& context, bool protected_run) {
  const std::size_t n = a.rows();
  RunRecord rec;
  rec.context = context;
  rec.scenario = sc.name;
  const bool recovery_required =
      (!sc.plan.kill_at.empty() || !sc.plan.kill_at_replay.empty()) &&
      !sc.plan.transient.any() && sc.plan.set.empty();
  try {
    Machine m(cube, port, CostParams{});
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(sc.plan));
    const algo::RunResult res = alg.run(a, b, m);
    rec.totals = res.report.totals();
    rec.recoveries = res.report.recoveries;
    rec.restarts = res.report.restarts;
    if (!approx_equal(res.c, want, 1e-9 * static_cast<double>(n))) {
      rec.outcome = Outcome::kFail;
      rec.detail = "product differs from serial gemm by " +
                   std::to_string(max_abs_diff(res.c, want));
    } else if (sc.plan.empty()) {
      const std::string diff = report_mismatch(clean_report, res.report);
      if (!diff.empty()) {
        rec.outcome = Outcome::kFail;
        rec.detail = "empty plan not bit-identical: " + diff;
      } else if (protected_run && (rec.totals.abft_detected != 0 ||
                                   rec.totals.abft_corrected != 0 ||
                                   rec.totals.silent_corruptions != 0)) {
        rec.outcome = Outcome::kFail;
        rec.detail = "fault-free protected run reported ABFT activity";
      } else {
        rec.outcome = Outcome::kCorrect;
      }
    } else if (recovery_required &&
               res.report.recoveries + res.report.restarts == 0) {
      rec.outcome = Outcome::kFail;
      rec.detail = "scheduled death never triggered a checkpoint recovery";
    } else {
      rec.outcome = Outcome::kCorrect;
    }
  } catch (const fault::FaultAbort& fa) {
    if (sc.plan.transient.any()) {
      rec.outcome = Outcome::kCleanAbort;  // located diagnosis — OK
      rec.detail = fa.event().to_string();
    } else {
      rec.outcome = Outcome::kFail;  // structural/death plans must recover
      rec.detail = "unexpected abort: " + std::string(fa.what());
    }
  } catch (const std::exception& e) {
    rec.outcome = Outcome::kFail;
    rec.detail = std::string("unlocated exception: ") + e.what();
  }
  camp.fails += rec.outcome == Outcome::kFail;
  camp.records.push_back(std::move(rec));
}

// ---------------------------------------------------------------------------
// Fuzz mode

/// Can @p plan plausibly force a clean abort of kind @p kind?  Fuzzed plans
/// are arbitrary, so the judge accepts exactly the abort kinds the plan's
/// ingredients can cause — anything else is a recovery regression.
bool may_abort(const fault::FaultPlan& plan, fault::FaultKind kind) {
  using fault::FaultKind;
  const bool structural = !plan.set.empty() || !plan.kill_at.empty() ||
                          !plan.kill_at_replay.empty() ||
                          plan.transient.detour_fail_prob > 0.0;
  switch (kind) {
    case FaultKind::kRetryExhausted:
      return plan.transient.any();
    case FaultKind::kBudgetExhausted:
      return plan.budget.any();
    case FaultKind::kUnroutable:
    case FaultKind::kHostless:
      return structural;
    case FaultKind::kAbftUncorrectable:
      return plan.transient.silent_prob > 0.0;
    case FaultKind::kCheckpointCorrupt:
      return !plan.corrupt_checkpoint.empty();
    default:
      return false;
  }
}

/// Post-recovery certification: re-run the captured trace through the
/// alias/lifetime, happens-before and semantic exactly-once passes.  Silent
/// corruption swaps delivered payloads for fresh buffers the trace cannot
/// see, so the buffer-identity passes (alias, race) are skipped for plans
/// that inject it; the symbolic semantic pass judges event structure only
/// and always runs.  cross_validate_plane is exact only for fault-free runs
/// and is deliberately not part of the certificate.  Returns the first
/// error diagnostic, or "" when the run is certified.
std::string certify_run(const analysis::RunTrace& trace, const Hypercube& cube,
                        PortModel port, bool skip_buffer_passes) {
  analysis::TraceInput tin;
  tin.trace = &trace;
  tin.cube = cube;
  tin.port = port;
  analysis::DiagnosticList found;
  if (!skip_buffer_passes) {
    analysis::make_alias_lifetime_pass()->run(tin, found);
    analysis::make_happens_before_pass()->run(tin, found);
  }
  (void)analysis::run_semantic_pass(trace, found);
  for (const analysis::Diagnostic& d : found.diags()) {
    if (d.severity == analysis::Severity::kError) return d.to_string();
  }
  return {};
}

struct FuzzEnv {
  Hypercube cube{3};
  PortModel port = PortModel::kOnePort;
  std::unique_ptr<algo::DistributedMatmul> alg;  // ABFT-protected
  Matrix a{0, 0};
  Matrix b{0, 0};
  Matrix want{0, 0};
};

struct FuzzRun {
  Outcome outcome = Outcome::kFail;
  std::string detail;
  fault::RunObservation obs;
  PhaseStats totals;
  std::uint64_t recoveries = 0;
  std::uint64_t restarts = 0;
};

void observe_report(fault::RunObservation& obs, const SimReport& report) {
  const PhaseStats t = report.totals();
  obs.retries = t.retries;
  obs.reroutes = t.reroutes;
  obs.recoveries = report.recoveries;
  obs.restarts = report.restarts;
  for (const fault::FaultEvent& ev : report.fault_events) {
    obs.event_kinds.push_back(ev.kind);
    obs.contracted |= ev.kind == fault::FaultKind::kNodeDeath;
  }
}

/// Run one fuzzed plan under the ABFT-protected algorithm and judge it:
/// correct + certified, clean located abort of a plausible kind, or FAIL.
FuzzRun run_fuzz_plan(const FuzzEnv& env, const fault::FaultPlan& plan) {
  FuzzRun out;
  Machine m(env.cube, env.port, CostParams{});
  analysis::TraceRecorder rec(m);
  try {
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
  } catch (const fault::FaultAbort& fa) {
    // Structural rejection at install time (hostless cluster, disconnected
    // live cube) — clean iff the plan's shape can cause it.
    out.obs.abort_kind = fa.event().kind;
    if (may_abort(plan, fa.event().kind)) {
      out.outcome = Outcome::kCleanAbort;
      out.detail = fa.event().to_string();
    } else {
      out.outcome = Outcome::kFail;
      out.detail = "implausible plan rejection: " + std::string(fa.what());
    }
    return out;
  }
  try {
    const algo::RunResult res = env.alg->run(env.a, env.b, m);
    out.totals = res.report.totals();
    out.recoveries = res.report.recoveries;
    out.restarts = res.report.restarts;
    out.obs.completed = true;
    observe_report(out.obs, res.report);
    const std::size_t n = env.a.rows();
    if (!approx_equal(res.c, env.want, 1e-9 * static_cast<double>(n))) {
      out.outcome = Outcome::kFail;
      out.detail = "product differs from serial gemm by " +
                   std::to_string(max_abs_diff(res.c, env.want));
      return out;
    }
    const std::string diag =
        certify_run(rec.trace(), env.cube, env.port,
                    /*skip_buffer_passes=*/plan.transient.silent_prob > 0.0);
    if (!diag.empty()) {
      out.outcome = Outcome::kFail;
      out.detail = "uncertified recovery: " + diag;
      return out;
    }
    out.outcome = Outcome::kCorrect;
  } catch (const fault::FaultAbort& fa) {
    const SimReport partial = m.report();  // run up to the abort
    observe_report(out.obs, partial);
    out.totals = partial.totals();
    out.recoveries = partial.recoveries;
    out.restarts = partial.restarts;
    out.obs.abort_kind = fa.event().kind;
    if (may_abort(plan, fa.event().kind)) {
      out.outcome = Outcome::kCleanAbort;
      out.detail = fa.event().to_string();
    } else {
      out.outcome = Outcome::kFail;
      out.detail = "implausible abort: " + std::string(fa.what());
    }
  } catch (const std::exception& e) {
    out.outcome = Outcome::kFail;
    out.detail = std::string("unlocated exception: ") + e.what();
  }
  return out;
}

struct FuzzConfig {
  std::uint64_t iterations = 0;    ///< mutation rounds after the seed corpus
  std::uint64_t run_budget = 0;    ///< cap on total simulated runs (0 = off)
  std::uint64_t shrink_budget = 200;  ///< predicate evals per shrink (0 = off)
  std::string repro_dir;
  std::string coverage_out;
  std::uint64_t seed = 0;
};

/// splitmix64 — per-iteration seed derivation.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One deterministic point of the wire stage: a named WireFaultSpec plus
/// whether the run also injects a rank death (ladder-top drill).
struct WireCase {
  const char* name;
  fault::WireFaultSpec wire;
  bool inject_death = false;
};

[[nodiscard]] std::vector<WireCase> wire_cases(std::uint64_t seed) {
  std::vector<WireCase> cases;
  {
    fault::WireFaultSpec w;
    w.seed = mix(seed ^ 0x11);
    w.drop_prob = 0.15;
    w.flip_prob = 0.10;
    cases.push_back({"wire:drop+flip", w, false});
  }
  {
    fault::WireFaultSpec w;
    w.seed = mix(seed ^ 0x22);
    w.dup_prob = 0.15;
    w.reorder_prob = 0.15;
    w.delay_prob = 0.10;
    w.delay_ms = 2;
    cases.push_back({"wire:dup+reorder+delay", w, false});
  }
  {
    fault::WireFaultSpec w;
    w.seed = mix(seed ^ 0x33);
    w.reconnect_prob = 0.10;
    cases.push_back({"wire:reconnect", w, false});
  }
  {
    fault::WireFaultSpec w;
    w.seed = mix(seed ^ 0x44);
    w.drop_prob = 0.10;
    w.dup_prob = 0.05;
    w.reorder_prob = 0.05;
    w.flip_prob = 0.05;
    w.reconnect_prob = 0.05;
    cases.push_back({"wire:storm+death+restart", w, true});
  }
  return cases;
}

/// The real-I/O stage of the fuzz campaign: SPMD runs over a
/// LossyTransport, judged by bit identity against the mailbox backend.
void run_wire_stage(Campaign& camp, fault::CoverageMap& coverage,
                    const std::string& context, std::uint64_t& runs,
                    const FuzzConfig& cfg) {
  constexpr std::uint32_t kRanks = 4;
  constexpr std::size_t kN = 16;
  constexpr std::chrono::milliseconds kTimeout{10000};
  const Matrix a = random_matrix(kN, kN, 27);
  const Matrix b = random_matrix(kN, kN, 28);
  rt::Team mailbox(kRanks, kTimeout);
  const Matrix want = rt::spmd_cannon(mailbox, a, b);
  const auto identical = [&](const Matrix& got) {
    if (got.rows() != want.rows() || got.cols() != want.cols()) return false;
    return std::memcmp(got.data().data(), want.data().data(),
                       want.rows() * want.cols() * sizeof(double)) == 0;
  };

  for (const WireCase& wc : wire_cases(cfg.seed)) {
    ++runs;
    RunRecord rec;
    rec.context = context;
    rec.scenario = wc.name;
    rec.outcome = Outcome::kCorrect;
    {
      fault::FaultPlan spec_only;
      spec_only.wire = wc.wire;
      rec.spec = fault::plan_spec(spec_only);
    }
    fault::RunObservation obs;
    try {
      rt::Team team(rt::make_socket_transport(kRanks, kTimeout, wc.wire),
                    kTimeout);
      if (wc.inject_death) {
        // Ladder top over the lossy wire: the death must surface as a
        // located primary failure, not a hang and not a wrong answer.
        team.inject_rank_death(2);
        try {
          (void)rt::spmd_cannon(team, a, b);
          rec.outcome = Outcome::kFail;
          rec.detail = "injected death over lossy wire was swallowed";
        } catch (const std::runtime_error& e) {
          if (std::string(e.what()).find("injected rank death") ==
              std::string::npos) {
            rec.outcome = Outcome::kFail;
            rec.detail = std::string("unlocated death diagnosis: ") + e.what();
          }
        }
        team.clear_injections();
        obs.restarts = 1;  // the rerun below is the restart rung
      }
      if (rec.outcome == Outcome::kCorrect) {
        const Matrix got = rt::spmd_cannon(team, a, b);
        const rt::WireStats ws = team.wire_stats();
        obs.completed = true;
        obs.wire_drops = ws.drops;
        obs.wire_dups = ws.dups;
        obs.wire_reorders = ws.reorders;
        obs.wire_flips = ws.flips;
        obs.wire_reconnects = ws.reconnects;
        obs.retries = team.last_run_recv_retries();
        if (!identical(got)) {
          rec.outcome = Outcome::kFail;
          rec.detail =
              "lossy-wire product is not bit-identical to the mailbox run";
        } else {
          rec.detail = "bit-identical over " + std::string(team.transport().name()) +
                       " (drops=" + std::to_string(ws.drops) +
                       " dups=" + std::to_string(ws.dups) +
                       " reorders=" + std::to_string(ws.reorders) +
                       " flips=" + std::to_string(ws.flips) +
                       " reconnects=" + std::to_string(ws.reconnects) +
                       " retransmits=" + std::to_string(ws.retransmits) + ")";
        }
      }
    } catch (const std::exception& e) {
      rec.outcome = Outcome::kFail;
      rec.detail = std::string("wire stage exception: ") + e.what();
    }
    coverage.record_all(observed_features(obs));
    camp.fails += rec.outcome == Outcome::kFail;
    camp.records.push_back(std::move(rec));
  }
}

/// Coverage-guided fuzz campaign; fills camp.records and returns the JSON
/// fuzz block.  Gate: coverage must reach 90% of the feature universe.
std::string run_fuzz_campaign(Campaign& camp, const FuzzConfig& cfg) {
  FuzzEnv env;
  // First registry algorithm that runs on the fuzz cube under one-port —
  // deterministic, and independent of registry additions ahead of it only
  // if their applicability changes, which the campaign log makes obvious.
  std::size_t n = 0;
  for (auto& alg : abft::all_protected()) {
    if (!alg->supports(env.port)) continue;
    n = pick_n(*alg, env.cube.size());
    if (n != 0) {
      env.alg = std::move(alg);
      break;
    }
  }
  if (env.alg == nullptr) {
    camp.fails += 1;
    RunRecord rec;
    rec.scenario = "fuzz-setup";
    rec.outcome = Outcome::kFail;
    rec.detail = "no registered algorithm is applicable on the fuzz cube";
    camp.records.push_back(std::move(rec));
    return "{}";
  }
  env.a = random_matrix(n, n, 17);
  env.b = random_matrix(n, n, 18);
  env.want = multiply_naive(env.a, env.b);
  const std::string context = env.alg->name() + " on " +
                              std::to_string(env.cube.size()) + " nodes (" +
                              to_string(env.port) + ")";

  fault::CoverageMap coverage;
  std::vector<fault::FaultPlan> corpus;
  std::uint64_t runs = 0;
  std::vector<std::pair<std::string, std::string>> reproducers;
  std::size_t repro_idx = 0;

  const auto over_budget = [&] {
    return cfg.run_budget != 0 && runs >= cfg.run_budget;
  };

  // Shrink a failing plan to a minimal reproducer and persist its spec.
  const auto report_failure = [&](const std::string& scenario,
                                  const fault::FaultPlan& plan,
                                  RunRecord& rec) {
    fault::FaultPlan minimal = plan;
    if (cfg.shrink_budget != 0) {
      std::uint64_t evals = 0;
      minimal = fault::shrink_plan(plan, [&](const fault::FaultPlan& cand) {
        if (evals >= cfg.shrink_budget || over_budget()) return false;
        ++evals;
        ++runs;
        return run_fuzz_plan(env, cand).outcome == Outcome::kFail;
      });
    }
    const std::string spec = fault::plan_spec(minimal);
    rec.spec = spec;
    rec.detail += " [reproducer: " + (spec.empty() ? "<empty plan>" : spec) +
                  "]";
    reproducers.emplace_back(scenario, spec);
    if (!cfg.repro_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(cfg.repro_dir, ec);
      std::ofstream f(cfg.repro_dir + "/repro-" +
                      std::to_string(repro_idx++) + ".txt");
      f << "# hcmm_chaos reproducer: " << scenario << "\n"
        << "# replay: feed the spec line to fault::plan_from_spec\n"
        << spec << "\n"
        << fault::plan_json(minimal) << "\n";
    }
  };

  const auto run_one = [&](const std::string& scenario,
                           const fault::FaultPlan& plan) {
    ++runs;
    FuzzRun r = run_fuzz_plan(env, plan);
    const std::size_t novel = coverage.record_all(observed_features(r.obs));
    RunRecord rec;
    rec.context = context;
    rec.scenario = scenario;
    rec.outcome = r.outcome;
    rec.detail = std::move(r.detail);
    rec.totals = r.totals;
    rec.recoveries = r.recoveries;
    rec.restarts = r.restarts;
    if (r.outcome == Outcome::kFail) {
      report_failure(scenario, plan, rec);
    } else if (rec.spec.empty()) {
      rec.spec = fault::plan_spec(plan);
    }
    camp.fails += rec.outcome == Outcome::kFail;
    camp.records.push_back(std::move(rec));
    // Plans that light up novel features and were not structurally rejected
    // are worth mutating further.
    if (novel > 0 && r.outcome != Outcome::kFail &&
        (r.obs.completed || r.obs.abort_kind != fault::FaultKind::kNone)) {
      corpus.push_back(plan);
    }
  };

  corpus.push_back(fault::FaultPlan{});  // mutation base of last resort
  for (const fault::Scenario& sc :
       fault::fuzz_seed_corpus(env.cube, cfg.seed)) {
    if (over_budget()) break;
    run_one("seed:" + sc.name, sc.plan);
  }
  for (std::uint64_t i = 0; i < cfg.iterations && !over_budget(); ++i) {
    const std::uint64_t pick = mix(cfg.seed ^ (i * 2 + 1));
    const fault::FaultPlan& base = corpus[pick % corpus.size()];
    const fault::FaultPlan child =
        fault::mutate_plan(base, env.cube, mix(cfg.seed ^ (i * 2)));
    run_one("fuzz-" + std::to_string(i), child);
  }

  // Wire stage: the simulator cannot light the wire:* features — they only
  // exist on the real socket transport.  Run the SPMD Cannon port over a
  // LossyTransport under seeded wire-fault specs, feed the transport's
  // WireStats deltas into the same coverage map, and hold the runs to the
  // strongest possible oracle: *bit identity* with the clean mailbox run
  // (the ARQ layer must make every injected drop/dup/reorder/flip
  // invisible).  The final spec also tests the ladder top: an injected
  // rank death over the lossy wire must abort every peer with a located
  // diagnosis, and the restart rung — a fresh run over the *same* damaged
  // transport — must still be bit-identical.
  run_wire_stage(camp, coverage, context, runs, cfg);

  constexpr double kCoverageGate = 0.9;
  if (coverage.ratio() < kCoverageGate) {
    camp.fails += 1;
    RunRecord rec;
    rec.context = context;
    rec.scenario = "coverage-gate";
    rec.outcome = Outcome::kFail;
    std::string missing;
    for (const std::string& f : coverage.missing()) {
      missing += (missing.empty() ? "" : ", ") + f;
    }
    rec.detail = "recovery-path coverage " + std::to_string(coverage.ratio()) +
                 " < 0.9; missing: " + missing;
    camp.records.push_back(std::move(rec));
  }
  if (!cfg.coverage_out.empty()) {
    std::ofstream f(cfg.coverage_out);
    f << coverage.json();
  }

  std::ostringstream os;
  os << "{\"runs\": " << runs << ", \"corpus\": " << corpus.size()
     << ", \"coverage_ratio\": " << coverage.ratio()
     << ", \"universe\": " << fault::CoverageMap::universe().size()
     << ", \"missing\": [";
  bool first = true;
  for (const std::string& f : coverage.missing()) {
    if (!first) os << ", ";
    json_escape(os, f);
    first = false;
  }
  os << "], \"reproducers\": [";
  first = true;
  for (const auto& [scenario, spec] : reproducers) {
    if (!first) os << ", ";
    os << "{\"scenario\": ";
    json_escape(os, scenario);
    os << ", \"spec\": ";
    json_escape(os, spec);
    os << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

/// Strict decimal parse shared by every numeric flag: silent truncation
/// would make a chaos reproduction irreproducible, so reject and exit 2.
bool parse_u64_flag(const char* flag, const char* text, std::uint64_t& out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::cerr << "hcmm_chaos: invalid " << flag << " '" << text
              << "' (expected a decimal unsigned integer)\n"
              << kUsage;
    return false;
  }
  out = v;
  return true;
}

void list_scenarios(std::uint64_t seed) {
  const Hypercube cube(3);
  std::cout << "chaos scenarios (unprotected sweep):\n";
  for (const auto& sc : fault::chaos_scenarios(cube, seed)) {
    std::cout << "  " << sc.name << "\n";
  }
  std::cout << "abft scenarios (protected sweep):\n";
  for (const auto& sc : fault::abft_scenarios(cube, seed)) {
    std::cout << "  " << sc.name << "\n";
  }
  std::cout << "fuzz seed corpus (--fuzz mode):\n";
  for (const auto& sc : fault::fuzz_seed_corpus(cube, seed)) {
    std::cout << "  " << sc.name << "  [" << fault::plan_spec(sc.plan)
              << "]\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_only = false;
  bool fuzz_mode = false;
  std::string out_path;
  std::uint64_t seed = 20260805;
  FuzzConfig fuzz;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-scenarios") {
      list_only = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--repro-dir" && i + 1 < argc) {
      fuzz.repro_dir = argv[++i];
    } else if (arg == "--coverage-out" && i + 1 < argc) {
      fuzz.coverage_out = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      if (!parse_u64_flag("--seed", argv[++i], seed)) return 2;
    } else if (arg == "--fuzz" && i + 1 < argc) {
      if (!parse_u64_flag("--fuzz", argv[++i], fuzz.iterations)) return 2;
      fuzz_mode = true;
    } else if (arg == "--budget" && i + 1 < argc) {
      if (!parse_u64_flag("--budget", argv[++i], fuzz.run_budget)) return 2;
    } else if (arg == "--shrink" && i + 1 < argc) {
      if (!parse_u64_flag("--shrink", argv[++i], fuzz.shrink_budget)) {
        return 2;
      }
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (!fuzz_mode && (fuzz.run_budget != 0 || fuzz.shrink_budget != 200 ||
                     !fuzz.repro_dir.empty() || !fuzz.coverage_out.empty())) {
    std::cerr << "hcmm_chaos: --budget/--shrink/--repro-dir/--coverage-out "
                 "require --fuzz\n"
              << kUsage;
    return 2;
  }
  if (list_only) {
    list_scenarios(seed);
    return 0;
  }

  Campaign camp;
  std::string fuzz_block;

  if (fuzz_mode) {
    fuzz.seed = seed;
    fuzz_block = run_fuzz_campaign(camp, fuzz);
  } else {
    const std::uint32_t dims[] = {3, 6};
    const PortModel ports[] = {PortModel::kOnePort, PortModel::kMultiPort};

    for (const std::uint32_t dim : dims) {
      const Hypercube cube(dim);
      const auto scenarios = fault::chaos_scenarios(cube, seed + dim);
      const auto abft_scs = fault::abft_scenarios(cube, seed + dim + 101);
      for (const PortModel port : ports) {
        // Sweep 1: unprotected algorithms against the transport-level
        // catalogue (every fault there is visible to retry/reroute recovery).
        for (const auto& alg : algo::all_algorithms()) {
          if (!alg->supports(port)) {
            ++camp.skipped;
            continue;
          }
          const std::size_t n = pick_n(*alg, cube.size());
          if (n == 0) {
            ++camp.skipped;
            continue;
          }
          const std::string context = alg->name() + " on " +
                                      std::to_string(cube.size()) +
                                      " nodes (" + to_string(port) + ")";
          const Matrix a = random_matrix(n, n, 17);
          const Matrix b = random_matrix(n, n, 18);
          const Matrix want = multiply_naive(a, b);

          // Plan-free reference run, reused for every scenario's product
          // check and for the baseline scenario's bit-identity check.
          SimReport clean_report;
          {
            Machine m(cube, port, CostParams{});
            clean_report = alg->run(a, b, m).report;
          }
          for (const auto& sc : scenarios) {
            run_scenario(camp, *alg, cube, port, a, b, want, clean_report, sc,
                         context, /*protected_run=*/false);
          }
        }

        // Sweep 2: ABFT-protected algorithms against silent corruption and
        // scheduled mid-run deaths at every phase boundary of the clean run.
        for (const auto& alg : abft::all_protected()) {
          if (!alg->supports(port)) {
            ++camp.skipped;
            continue;
          }
          const std::size_t n = pick_n(*alg, cube.size());
          if (n == 0) {
            ++camp.skipped;
            continue;
          }
          const std::string context = alg->name() + " on " +
                                      std::to_string(cube.size()) +
                                      " nodes (" + to_string(port) + ")";
          const Matrix a = random_matrix(n, n, 17);
          const Matrix b = random_matrix(n, n, 18);
          const Matrix want = multiply_naive(a, b);

          SimReport clean_report;
          {
            Machine m(cube, port, CostParams{});
            clean_report = alg->run(a, b, m).report;
          }
          bool has_encode = false;
          bool has_verify = false;
          for (const PhaseStats& ph : clean_report.phases) {
            has_encode |= ph.name == "abft encode";
            has_verify |= ph.name == "abft verify";
          }
          if (!has_encode || !has_verify) {
            RunRecord rec;
            rec.context = context;
            rec.scenario = "abft-phases-present";
            rec.outcome = Outcome::kFail;
            rec.detail = "protected run is missing its abft phases";
            camp.fails += 1;
            camp.records.push_back(std::move(rec));
            continue;
          }

          std::vector<fault::Scenario> scs;
          scs.push_back({"baseline-empty-plan", fault::FaultPlan{}});
          scs.insert(scs.end(), abft_scs.begin(), abft_scs.end());
          const std::vector<std::uint64_t> bounds =
              phase_boundary_rounds(clean_report);
          const std::uint64_t total = bounds.back();
          std::uint64_t prev = ~std::uint64_t{0};
          for (std::size_t j = 0; j + 1 < bounds.size(); ++j) {
            const std::uint64_t r = bounds[j];
            if (r >= total || r == prev) continue;  // no round left / dup
            prev = r;
            fault::Scenario s{"death-at-round-" + std::to_string(r),
                              fault::FaultPlan{}};
            s.plan.kill_node_at_round(
                fault::safe_victim(cube, seed + dim * 1000 + j,
                                   fault::FaultSet{}),
                r);
            scs.push_back(std::move(s));
          }

          for (const auto& sc : scs) {
            run_scenario(camp, *alg, cube, port, a, b, want, clean_report, sc,
                         context, /*protected_run=*/true);
          }
        }
      }
    }
  }

  const std::string doc =
      campaign_json(camp.records, camp.fails, camp.skipped, fuzz_block);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << doc << "\n";
  }
  if (json) {
    std::cout << doc << "\n";
  } else {
    std::size_t correct = 0;
    std::size_t aborted = 0;
    for (const RunRecord& r : camp.records) {
      correct += r.outcome == Outcome::kCorrect;
      aborted += r.outcome == Outcome::kCleanAbort;
    }
    std::cout << "hcmm_chaos: " << camp.records.size() << " runs — " << correct
              << " correct, " << aborted << " clean aborts, " << camp.fails
              << " failures (" << camp.skipped << " combinations skipped)\n";
    for (const RunRecord& r : camp.records) {
      if (r.outcome == Outcome::kFail) {
        std::cout << "FAIL: " << r.context << " / " << r.scenario << ": "
                  << r.detail << "\n";
      }
    }
  }
  return camp.fails == 0 ? 0 : 1;
}
