// hcmm_chaos: fault-injection campaign over the whole algorithm registry.
//
// Drives every registered matrix-multiplication algorithm on 8- and 64-node
// machines under both port models through every chaos scenario (empty plan,
// single link failure, transient drops, latency spikes, a dead node, and a
// combined storm — see fault/scenarios.hpp), then repeats the sweep with
// every algorithm wrapped in abft::protect against the ABFT catalogue:
// silent corruption the transport CRC cannot see, and node deaths scheduled
// mid-run at each phase-boundary round of the clean run.  Every run must end
// in one of exactly two acceptable states:
//
//   1. a numerically correct product (verified against the serial gemm), or
//   2. a clean fault::FaultAbort carrying a located FaultEvent diagnosis
//      (only possible for scenarios with a stochastic transient model).
//
// Anything else — wrong product, unlocated exception, crash — is a FAIL and
// the tool exits nonzero, so the ctest/CI wiring (`chaos_campaign`) turns a
// recovery regression into a build failure.  The baseline-empty-plan
// scenario additionally asserts the zero-overhead guarantee: its measured
// report must be bit-identical to a plan-free run, and a protected run must
// report zero ABFT detections on top.  Scheduled-death scenarios must end
// correct with at least one checkpoint recovery — the death is not optional.
//
// Usage: hcmm_chaos [--json] [--out FILE] [--seed S]

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "hcmm/abft/protect.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/fault/scenarios.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/sim/report_io.hpp"

namespace {

using namespace hcmm;

/// Smallest problem size the algorithm accepts on @p p nodes, 0 if none.
std::size_t pick_n(const algo::DistributedMatmul& alg, std::uint32_t p) {
  for (const std::size_t n : {4u, 8u, 16u, 24u, 32u, 48u, 64u, 96u, 128u, 256u}) {
    if (alg.applicable(n, p)) return n;
  }
  return 0;
}

enum class Outcome : std::uint8_t { kCorrect, kCleanAbort, kFail };

struct RunRecord {
  std::string context;
  std::string scenario;
  Outcome outcome = Outcome::kFail;
  std::string detail;  // abort diagnosis or failure description
  PhaseStats totals;   // zeroed on aborts
  std::uint64_t recoveries = 0;
};

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kCorrect: return "correct";
    case Outcome::kCleanAbort: return "clean-abort";
    case Outcome::kFail: return "FAIL";
  }
  return "?";
}

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

std::string campaign_json(const std::vector<RunRecord>& records,
                          std::size_t fails, std::size_t skipped) {
  std::ostringstream os;
  std::size_t correct = 0;
  std::size_t aborted = 0;
  for (const RunRecord& r : records) {
    correct += r.outcome == Outcome::kCorrect;
    aborted += r.outcome == Outcome::kCleanAbort;
  }
  os << "{\"runs\": " << records.size() << ", \"correct\": " << correct
     << ", \"clean_aborts\": " << aborted << ", \"failures\": " << fails
     << ", \"skipped\": " << skipped << ", \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    if (i != 0) os << ", ";
    os << "{\"context\": ";
    json_escape(os, r.context);
    os << ", \"scenario\": ";
    json_escape(os, r.scenario);
    os << ", \"outcome\": \"" << to_string(r.outcome) << "\", \"detail\": ";
    json_escape(os, r.detail);
    os << ", \"retries\": " << r.totals.retries
       << ", \"reroutes\": " << r.totals.reroutes
       << ", \"extra_hops\": " << r.totals.extra_hops
       << ", \"fault_startups\": " << r.totals.fault_startups
       << ", \"fault_delay\": " << r.totals.fault_delay
       << ", \"silent_corruptions\": " << r.totals.silent_corruptions
       << ", \"abft_detected\": " << r.totals.abft_detected
       << ", \"abft_corrected\": " << r.totals.abft_corrected
       << ", \"recoveries\": " << r.recoveries << "}";
  }
  os << "]}";
  return os.str();
}

/// Reports must agree field-for-field — the zero-overhead guarantee for an
/// installed-but-empty plan.  Doubles are compared exactly on purpose.
std::string report_mismatch(const SimReport& base, const SimReport& with) {
  if (base.phases.size() != with.phases.size()) return "phase count differs";
  for (std::size_t i = 0; i < base.phases.size(); ++i) {
    const PhaseStats& a = base.phases[i];
    const PhaseStats& b = with.phases[i];
    if (a.rounds != b.rounds) return a.name + ": a-term differs";
    if (a.word_cost != b.word_cost) return a.name + ": b-term differs";
    if (a.messages != b.messages) return a.name + ": messages differ";
    if (a.link_words != b.link_words) return a.name + ": link_words differ";
    if (a.flops != b.flops) return a.name + ": flops differ";
    if (a.comm_time != b.comm_time) return a.name + ": comm_time differs";
    if (a.compute_time != b.compute_time) {
      return a.name + ": compute_time differs";
    }
    if (a.checkpoints != b.checkpoints) return a.name + ": checkpoints differ";
    if (a.checkpoint_cost != b.checkpoint_cost) {
      return a.name + ": checkpoint_cost differs";
    }
    if (b.faulted()) return a.name + ": fault counters nonzero";
  }
  if (base.async_makespan != with.async_makespan) {
    return "async_makespan differs";
  }
  if (base.peak_words_total != with.peak_words_total) {
    return "peak_words_total differs";
  }
  if (!with.fault_events.empty()) return "fault events recorded";
  if (with.recoveries != 0) return "recoveries recorded";
  return {};
}

/// round_seq_ value at the start of each measured phase of a *clean* run:
/// PhaseStats::rounds counts one start-up per executed round plus one per
/// checkpoint, so subtracting the checkpoints recovers the executed-round
/// sequence the kill_at triggers key on.
std::vector<std::uint64_t> phase_boundary_rounds(const SimReport& clean) {
  std::vector<std::uint64_t> out;
  std::uint64_t executed = 0;
  for (const PhaseStats& ph : clean.phases) {
    out.push_back(executed);
    executed += ph.rounds - ph.checkpoints;
  }
  out.push_back(executed);  // total — one past the last triggerable round
  return out;
}

struct Campaign {
  std::vector<RunRecord> records;
  std::size_t fails = 0;
  std::size_t skipped = 0;
};

/// Run one (algorithm, scenario) combination and judge the outcome.
/// @p protected_run switches on the ABFT acceptance rules: empty plans must
/// additionally report zero ABFT activity, and death-only plans must end
/// correct after at least one recovery.
void run_scenario(Campaign& camp, const algo::DistributedMatmul& alg,
                  const Hypercube& cube, PortModel port, const Matrix& a,
                  const Matrix& b, const Matrix& want,
                  const SimReport& clean_report, const fault::Scenario& sc,
                  const std::string& context, bool protected_run) {
  const std::size_t n = a.rows();
  RunRecord rec;
  rec.context = context;
  rec.scenario = sc.name;
  const bool death_only = !sc.plan.kill_at.empty() &&
                          !sc.plan.transient.any() && sc.plan.set.empty();
  try {
    Machine m(cube, port, CostParams{});
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(sc.plan));
    const algo::RunResult res = alg.run(a, b, m);
    rec.totals = res.report.totals();
    rec.recoveries = res.report.recoveries;
    if (!approx_equal(res.c, want, 1e-9 * static_cast<double>(n))) {
      rec.outcome = Outcome::kFail;
      rec.detail = "product differs from serial gemm by " +
                   std::to_string(max_abs_diff(res.c, want));
    } else if (sc.plan.empty()) {
      const std::string diff = report_mismatch(clean_report, res.report);
      if (!diff.empty()) {
        rec.outcome = Outcome::kFail;
        rec.detail = "empty plan not bit-identical: " + diff;
      } else if (protected_run && (rec.totals.abft_detected != 0 ||
                                   rec.totals.abft_corrected != 0 ||
                                   rec.totals.silent_corruptions != 0)) {
        rec.outcome = Outcome::kFail;
        rec.detail = "fault-free protected run reported ABFT activity";
      } else {
        rec.outcome = Outcome::kCorrect;
      }
    } else if (death_only && res.report.recoveries == 0) {
      rec.outcome = Outcome::kFail;
      rec.detail = "scheduled death never triggered a checkpoint recovery";
    } else {
      rec.outcome = Outcome::kCorrect;
    }
  } catch (const fault::FaultAbort& fa) {
    if (sc.plan.transient.any()) {
      rec.outcome = Outcome::kCleanAbort;  // located diagnosis — OK
      rec.detail = fa.event().to_string();
    } else {
      rec.outcome = Outcome::kFail;  // structural/death plans must recover
      rec.detail = "unexpected abort: " + std::string(fa.what());
    }
  } catch (const std::exception& e) {
    rec.outcome = Outcome::kFail;
    rec.detail = std::string("unlocated exception: ") + e.what();
  }
  camp.fails += rec.outcome == Outcome::kFail;
  camp.records.push_back(std::move(rec));
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  std::uint64_t seed = 20260805;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      // Parse strictly: a seed that silently truncates (or an exception out
      // of main) would make a chaos reproduction irreproducible.
      const char* text = argv[++i];
      char* end = nullptr;
      errno = 0;
      const unsigned long long v = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE) {
        std::cerr << "hcmm_chaos: invalid --seed '" << text
                  << "' (expected a decimal unsigned integer)\n"
                  << "usage: hcmm_chaos [--json] [--out FILE] [--seed S]\n";
        return 2;
      }
      seed = v;
    } else {
      std::cerr << "usage: hcmm_chaos [--json] [--out FILE] [--seed S]\n";
      return 2;
    }
  }

  Campaign camp;

  const std::uint32_t dims[] = {3, 6};
  const PortModel ports[] = {PortModel::kOnePort, PortModel::kMultiPort};

  for (const std::uint32_t dim : dims) {
    const Hypercube cube(dim);
    const auto scenarios = fault::chaos_scenarios(cube, seed + dim);
    const auto abft_scs = fault::abft_scenarios(cube, seed + dim + 101);
    for (const PortModel port : ports) {
      // Sweep 1: unprotected algorithms against the transport-level
      // catalogue (every fault there is visible to retry/reroute recovery).
      for (const auto& alg : algo::all_algorithms()) {
        if (!alg->supports(port)) {
          ++camp.skipped;
          continue;
        }
        const std::size_t n = pick_n(*alg, cube.size());
        if (n == 0) {
          ++camp.skipped;
          continue;
        }
        const std::string context = alg->name() + " on " +
                                    std::to_string(cube.size()) + " nodes (" +
                                    to_string(port) + ")";
        const Matrix a = random_matrix(n, n, 17);
        const Matrix b = random_matrix(n, n, 18);
        const Matrix want = multiply_naive(a, b);

        // Plan-free reference run, reused for every scenario's product check
        // and for the baseline scenario's bit-identity check.
        SimReport clean_report;
        {
          Machine m(cube, port, CostParams{});
          clean_report = alg->run(a, b, m).report;
        }
        for (const auto& sc : scenarios) {
          run_scenario(camp, *alg, cube, port, a, b, want, clean_report, sc,
                       context, /*protected_run=*/false);
        }
      }

      // Sweep 2: ABFT-protected algorithms against silent corruption and
      // scheduled mid-run deaths at every phase boundary of the clean run.
      for (const auto& alg : abft::all_protected()) {
        if (!alg->supports(port)) {
          ++camp.skipped;
          continue;
        }
        const std::size_t n = pick_n(*alg, cube.size());
        if (n == 0) {
          ++camp.skipped;
          continue;
        }
        const std::string context = alg->name() + " on " +
                                    std::to_string(cube.size()) + " nodes (" +
                                    to_string(port) + ")";
        const Matrix a = random_matrix(n, n, 17);
        const Matrix b = random_matrix(n, n, 18);
        const Matrix want = multiply_naive(a, b);

        SimReport clean_report;
        {
          Machine m(cube, port, CostParams{});
          clean_report = alg->run(a, b, m).report;
        }
        bool has_encode = false;
        bool has_verify = false;
        for (const PhaseStats& ph : clean_report.phases) {
          has_encode |= ph.name == "abft encode";
          has_verify |= ph.name == "abft verify";
        }
        if (!has_encode || !has_verify) {
          RunRecord rec;
          rec.context = context;
          rec.scenario = "abft-phases-present";
          rec.outcome = Outcome::kFail;
          rec.detail = "protected run is missing its abft phases";
          camp.fails += 1;
          camp.records.push_back(std::move(rec));
          continue;
        }

        std::vector<fault::Scenario> scs;
        scs.push_back({"baseline-empty-plan", fault::FaultPlan{}});
        scs.insert(scs.end(), abft_scs.begin(), abft_scs.end());
        const std::vector<std::uint64_t> bounds =
            phase_boundary_rounds(clean_report);
        const std::uint64_t total = bounds.back();
        std::uint64_t prev = ~std::uint64_t{0};
        for (std::size_t j = 0; j + 1 < bounds.size(); ++j) {
          const std::uint64_t r = bounds[j];
          if (r >= total || r == prev) continue;  // no round left / duplicate
          prev = r;
          fault::Scenario s{"death-at-round-" + std::to_string(r),
                            fault::FaultPlan{}};
          s.plan.kill_node_at_round(
              fault::safe_victim(cube, seed + dim * 1000 + j, fault::FaultSet{}),
              r);
          scs.push_back(std::move(s));
        }

        for (const auto& sc : scs) {
          run_scenario(camp, *alg, cube, port, a, b, want, clean_report, sc,
                       context, /*protected_run=*/true);
        }
      }
    }
  }

  const std::string doc = campaign_json(camp.records, camp.fails, camp.skipped);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << doc << "\n";
  }
  if (json) {
    std::cout << doc << "\n";
  } else {
    std::size_t correct = 0;
    std::size_t aborted = 0;
    for (const RunRecord& r : camp.records) {
      correct += r.outcome == Outcome::kCorrect;
      aborted += r.outcome == Outcome::kCleanAbort;
    }
    std::cout << "hcmm_chaos: " << camp.records.size() << " runs — " << correct
              << " correct, " << aborted << " clean aborts, " << camp.fails
              << " failures (" << camp.skipped << " combinations skipped)\n";
    for (const RunRecord& r : camp.records) {
      if (r.outcome == Outcome::kFail) {
        std::cout << "FAIL: " << r.context << " / " << r.scenario << ": "
                  << r.detail << "\n";
      }
    }
  }
  return camp.fails == 0 ? 0 : 1;
}
