// hcmm_lint: static verifier for the whole algorithm registry.
//
// Drives every registered matrix-multiplication algorithm — bare and under
// the abft::protect wrapper, whose checksum collectives add schedules of
// their own — on 8-, 64- and 512-node machines under both port models, and
// checks four things:
//
//   1. Every Schedule handed to Machine::run is analyzed *before* the
//      machine executes it (topology, port model, tag dataflow) against the
//      live store placement, via the schedule observer.
//   2. The whole run is captured as a RunTrace (store-op + phase + GEMM
//      observers) and re-executed abstractly by the alias/lifetime and
//      happens-before passes: buffer identity, view extents, uniqueness,
//      and vector-clock race freedom are verified end to end.
//   3. The trace-predicted DataPlaneStats are cross-validated against the
//      counters the DataStore actually measured (plane.divergence).
//   4. Round schemas are lifted to symbolic all-p legality certificates
//      (analysis/symbolic): one lint run certifies the registry for every
//      power-of-two machine size, not just the sampled cubes.
//   5. The semantic pass (analysis/semantic) abstractly re-executes every
//      trace over symbolic product multisets and proves C = A·B was
//      computed with every a_{ik}·b_{kj} contributed exactly once; clean
//      passes at every dim combine with the legality certificate into
//      all-p semantic certificates.
//
// Afterwards audits every registered collective builder's static (a, b)
// cost against the Table 1 closed forms, and every registered algorithm's
// end-to-end static (a, b) against the Table 2 closed forms (the table2
// pass, analysis/table2_audit).  Exits nonzero on any error-severity
// finding, so the ctest/CI wiring turns a legality, race, aliasing,
// semantic or cost regression into a build failure.
//
// Usage: hcmm_lint [--json] [--out FILE] [--sarif FILE] [--dims D1,D2,...]
//                  [--passes P1,P2,...]
//   --dims    cube dimensions to sample (default 3,6,9)
//   --passes  subset of topology,port,dataflow,alias,race,plane,symbolic,
//             semantic,cost,table2 (default: all)

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string_view>
#include <vector>

#include "hcmm/abft/protect.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/analysis/cost_audit.hpp"
#include "hcmm/analysis/passes.hpp"
#include "hcmm/analysis/placement.hpp"
#include "hcmm/analysis/semantic.hpp"
#include "hcmm/analysis/symbolic.hpp"
#include "hcmm/analysis/table2_audit.hpp"
#include "hcmm/analysis/trace.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/report_io.hpp"

namespace {

using namespace hcmm;

struct PassSelection {
  bool topology = true;
  bool port = true;
  bool dataflow = true;
  bool alias = true;
  bool race = true;
  bool plane = true;
  bool symbolic = true;
  bool semantic = true;
  bool cost = true;
  bool table2 = true;
};

bool parse_passes(const std::string_view list, PassSelection& sel) {
  sel = PassSelection{false, false, false, false, false,
                      false, false, false, false, false};
  std::stringstream ss{std::string(list)};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "topology") sel.topology = true;
    else if (item == "port") sel.port = true;
    else if (item == "dataflow") sel.dataflow = true;
    else if (item == "alias") sel.alias = true;
    else if (item == "race") sel.race = true;
    else if (item == "plane") sel.plane = true;
    else if (item == "symbolic") sel.symbolic = true;
    else if (item == "semantic") sel.semantic = true;
    else if (item == "cost") sel.cost = true;
    else if (item == "table2") sel.table2 = true;
    else return false;
  }
  return true;
}

bool parse_dims(const std::string_view list, std::vector<std::uint32_t>& dims) {
  dims.clear();
  std::stringstream ss{std::string(list)};
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      const unsigned long v = std::stoul(item);
      if (v == 0 || v > 12) return false;
      dims.push_back(static_cast<std::uint32_t>(v));
    } catch (...) {
      return false;
    }
  }
  return !dims.empty();
}

/// Diagnostics plus, per diagnostic, the analyzed artifact's name (feeds
/// the SARIF logical locations).
struct Findings {
  analysis::DiagnosticList list;
  std::vector<std::string> subjects;

  void merge(const analysis::DiagnosticList& found,
             const std::string& context, const std::string& subject) {
    for (analysis::Diagnostic d : found.diags()) {
      d.message = context + ": " + d.message;
      list.add(std::move(d));
      subjects.push_back(subject);
    }
  }
};

/// Smallest problem size the algorithm accepts on @p p nodes, 0 if none.
std::size_t pick_n(const algo::DistributedMatmul& alg, std::uint32_t p) {
  for (const std::size_t n : {4u, 8u, 16u, 24u, 32u, 48u, 64u, 96u, 128u, 256u}) {
    if (alg.applicable(n, p)) return n;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  std::string sarif_path;
  std::vector<std::uint32_t> dims = {3, 6, 9};
  PassSelection sel;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--dims" && i + 1 < argc) {
      if (!parse_dims(argv[++i], dims)) {
        std::cerr << "hcmm_lint: bad --dims list\n";
        return 2;
      }
    } else if (arg == "--passes" && i + 1 < argc) {
      if (!parse_passes(argv[++i], sel)) {
        std::cerr << "hcmm_lint: bad --passes list (know: topology, port, "
                     "dataflow, alias, race, plane, symbolic, semantic, "
                     "cost, table2)\n";
        return 2;
      }
    } else {
      std::cerr << "usage: hcmm_lint [--json] [--out FILE] [--sarif FILE] "
                   "[--dims D1,D2,...] [--passes P1,P2,...]\n";
      return 2;
    }
  }

  Findings all;
  std::size_t schedules_checked = 0;
  std::size_t runs = 0;
  std::size_t skipped = 0;

  const PortModel ports[] = {PortModel::kOnePort, PortModel::kMultiPort};

  analysis::Analyzer analyzer;
  if (sel.topology) analyzer.add_pass(analysis::make_topology_pass());
  if (sel.port) analyzer.add_pass(analysis::make_port_pass());
  if (sel.dataflow) analyzer.add_pass(analysis::make_dataflow_pass());
  const bool any_schedule_pass = sel.topology || sel.port || sel.dataflow;

  std::vector<std::unique_ptr<analysis::TracePass>> trace_passes;
  if (sel.alias) trace_passes.push_back(analysis::make_alias_lifetime_pass());
  if (sel.race) trace_passes.push_back(analysis::make_happens_before_pass());

  // subject -> port -> dim -> schedules, for the symbolic certificates.
  std::map<std::string, std::map<PortModel, std::map<std::uint32_t,
      std::vector<Schedule>>>> samples;
  // subject -> port -> per-dim semantic summaries, for the semantic
  // certificates (same subjects as `samples`).
  std::map<std::string, std::map<PortModel,
      std::vector<std::pair<std::uint32_t, analysis::SemanticSummary>>>>
      sem_samples;

  const auto lint_registry =
      [&](const std::vector<std::unique_ptr<algo::DistributedMatmul>>& algs,
          const Hypercube& cube, PortModel port) {
        for (const auto& alg : algs) {
          if (!alg->supports(port)) {
            ++skipped;
            continue;
          }
          const std::size_t n = pick_n(*alg, cube.size());
          if (n == 0) {
            ++skipped;
            continue;
          }
          Machine m(cube, port, CostParams{});
          std::size_t sched_idx = 0;
          const std::string context = alg->name() + " on " +
                                      std::to_string(cube.size()) +
                                      " nodes (" + to_string(port) + ")";
          analysis::TraceRecorder rec(m);
          // Replaces the recorder's schedule observer; forward to it.
          m.set_schedule_observer([&](const Schedule& s) {
            rec.record_schedule(s);
            if (any_schedule_pass) {
              const analysis::Placement placed =
                  analysis::snapshot_placement(m.store());
              analysis::AnalysisInput in;
              in.schedule = &s;
              in.cube = m.cube();
              in.port = m.port();
              in.initial = &placed;
              all.merge(analyzer.analyze(in),
                        context + ", schedule #" + std::to_string(sched_idx),
                        context);
            }
            ++schedules_checked;
            ++sched_idx;
          });
          const Matrix a = random_matrix(n, n, 17);
          const Matrix b = random_matrix(n, n, 18);
          (void)alg->run(a, b, m);
          ++runs;

          const analysis::RunTrace trace = rec.take();
          analysis::TraceInput tin;
          tin.trace = &trace;
          tin.cube = m.cube();
          tin.port = m.port();
          for (const auto& pass : trace_passes) {
            analysis::DiagnosticList tfound;
            pass->run(tin, tfound);
            all.merge(tfound, context, context);
          }
          if (sel.plane) {
            analysis::DiagnosticList pfound;
            analysis::cross_validate_plane(trace, m.store().plane_stats(),
                                           pfound);
            all.merge(pfound, context, context);
          }
          if (sel.semantic) {
            analysis::DiagnosticList sfound;
            const analysis::SemanticSummary sum =
                analysis::run_semantic_pass(trace, sfound);
            all.merge(sfound, context, context);
            sem_samples[alg->name()][port].emplace_back(cube.dim(), sum);
          }
          if (sel.symbolic) {
            samples[alg->name()][port][cube.dim()] = trace.schedules;
          }
        }
      };

  for (const std::uint32_t dim : dims) {
    const Hypercube cube(dim);
    for (const PortModel port : ports) {
      lint_registry(algo::all_algorithms(), cube, port);
      lint_registry(abft::all_protected(), cube, port);
    }
  }

  // Lift the sampled round schemas to all-p certificates.
  std::vector<analysis::DimCertificate> certs;
  std::size_t certified = 0;
  for (const auto& [subject, by_port] : samples) {
    for (const auto& [port, by_dim] : by_port) {
      std::vector<analysis::SampledRun> sampled;
      sampled.reserve(by_dim.size());
      for (const auto& [dim, schedules] : by_dim) {
        sampled.push_back({dim, &schedules});
      }
      certs.push_back(
          analysis::certify_dimension_schema(subject, port, sampled));
      if (certs.back().certified_all_p) ++certified;
    }
  }

  // Pair the per-dim semantic summaries with the matching legality
  // certificate into all-p semantic certificates.
  std::vector<analysis::SemanticCertificate> sem_certs;
  std::size_t sem_certified = 0;
  for (const auto& [subject, by_port] : sem_samples) {
    for (const auto& [port, by_dim] : by_port) {
      const analysis::DimCertificate* legality = nullptr;
      for (const auto& c : certs) {
        if (c.subject == subject && c.port == port) legality = &c;
      }
      sem_certs.push_back(
          analysis::certify_semantics(subject, port, by_dim, legality));
      if (sem_certs.back().certified_all_p) ++sem_certified;
    }
  }

  // Every registered algorithm's end-to-end static (a, b) vs. Table 2.
  std::vector<analysis::Table2Sample> table2_rows;
  if (sel.table2) {
    for (const auto& alg : algo::all_algorithms()) {
      for (const std::uint32_t dim : dims) {
        for (const PortModel port : ports) {
          analysis::DiagnosticList tfound;
          const auto sample =
              analysis::audit_algorithm_table2(alg->id(), port, dim, tfound);
          if (!sample) continue;
          const std::string context = "table2 audit: " + alg->name();
          all.merge(tfound, context, context);
          table2_rows.push_back(*sample);
        }
      }
    }
  }

  // Static (a, b) of every collective builder vs. the Table 1 closed forms;
  // item size a multiple of dim so the multi-port chunking is exact.
  if (sel.cost) {
    for (const std::uint32_t dim : dims) {
      for (const PortModel port : ports) {
        const std::string context = "builder audit on " +
                                    std::to_string(1u << dim) + " nodes (" +
                                    to_string(port) + ")";
        all.merge(analysis::audit_collective_builders(dim, dim * 8u, port),
                  context, context);
      }
    }
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << diagnostics_json(all.list) << "\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream f(sarif_path);
    f << sarif_json(all.list, all.subjects) << "\n";
  }
  if (json) {
    std::cout << diagnostics_json(all.list) << "\n";
  } else {
    std::cout << "hcmm_lint: " << runs << " algorithm runs, "
              << schedules_checked << " schedules analyzed, " << skipped
              << " combinations skipped (unsupported/inapplicable)\n";
    if (!certs.empty()) {
      std::cout << "all-p certificates (" << certified << "/" << certs.size()
                << " certified):\n";
      for (const auto& c : certs) {
        std::cout << "  " << c.to_string() << "\n";
      }
    }
    if (!sem_certs.empty()) {
      std::cout << "semantic certificates (" << sem_certified << "/"
                << sem_certs.size() << " proven for all p):\n";
      for (const auto& c : sem_certs) {
        std::cout << "  " << c.to_string() << "\n";
      }
    }
    if (!table2_rows.empty()) {
      std::cout << "Table 2 cost certificates:\n";
      for (const auto& r : table2_rows) {
        std::cout << "  " << r.to_string() << "\n";
      }
    }
    if (all.list.empty()) {
      std::cout << "no findings\n";
    } else {
      std::cout << all.list.to_string();
      std::cout << all.list.error_count() << " error(s), "
                << all.list.count(analysis::Severity::kWarning)
                << " warning(s)\n";
    }
  }
  return all.list.has_errors() ? 1 : 0;
}
