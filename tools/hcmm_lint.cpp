// hcmm_lint: static schedule verifier for the whole algorithm registry.
//
// Drives every registered matrix-multiplication algorithm — bare and under
// the abft::protect wrapper, whose checksum collectives add schedules of
// their own — on small 8- and 64-node machines under both port models,
// intercepting every Schedule the algorithm hands to Machine::run via the
// schedule observer and running the default analysis pipeline (topology,
// port model, tag dataflow) against the live store placement *before* the
// machine executes it.  Afterwards audits
// every registered collective builder's static (a, b) cost against the
// Table 1 closed forms.  Exits nonzero on any error-severity finding, so the
// ctest/CI wiring turns a schedule-legality or cost regression into a build
// failure.
//
// Usage: hcmm_lint [--json] [--out FILE]

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string_view>
#include <vector>

#include "hcmm/abft/protect.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/analysis/cost_audit.hpp"
#include "hcmm/analysis/passes.hpp"
#include "hcmm/analysis/placement.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/report_io.hpp"

namespace {

using namespace hcmm;

/// Append @p found to @p all with a "context: " prefix on every message.
void merge_with_context(analysis::DiagnosticList& all,
                        const analysis::DiagnosticList& found,
                        const std::string& context) {
  for (analysis::Diagnostic d : found.diags()) {
    d.message = context + ": " + d.message;
    all.add(std::move(d));
  }
}

/// Smallest problem size the algorithm accepts on @p p nodes, 0 if none.
std::size_t pick_n(const algo::DistributedMatmul& alg, std::uint32_t p) {
  for (const std::size_t n : {4u, 8u, 16u, 24u, 32u, 48u, 64u, 96u, 128u, 256u}) {
    if (alg.applicable(n, p)) return n;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: hcmm_lint [--json] [--out FILE]\n";
      return 2;
    }
  }

  analysis::DiagnosticList all;
  std::size_t schedules_checked = 0;
  std::size_t runs = 0;
  std::size_t skipped = 0;

  const std::uint32_t dims[] = {3, 6};
  const PortModel ports[] = {PortModel::kOnePort, PortModel::kMultiPort};
  const analysis::Analyzer analyzer = analysis::Analyzer::with_default_passes();

  const auto lint_registry =
      [&](const std::vector<std::unique_ptr<algo::DistributedMatmul>>& algs,
          const Hypercube& cube, PortModel port) {
        for (const auto& alg : algs) {
          if (!alg->supports(port)) {
            ++skipped;
            continue;
          }
          const std::size_t n = pick_n(*alg, cube.size());
          if (n == 0) {
            ++skipped;
            continue;
          }
          Machine m(cube, port, CostParams{});
          std::size_t sched_idx = 0;
          analysis::DiagnosticList found;
          const std::string context = alg->name() + " on " +
                                      std::to_string(cube.size()) +
                                      " nodes (" + to_string(port) + ")";
          m.set_schedule_observer([&](const Schedule& s) {
            const analysis::Placement placed =
                analysis::snapshot_placement(m.store());
            analysis::AnalysisInput in;
            in.schedule = &s;
            in.cube = m.cube();
            in.port = m.port();
            in.initial = &placed;
            merge_with_context(found, analyzer.analyze(in),
                               context + ", schedule #" +
                                   std::to_string(sched_idx));
            ++schedules_checked;
            ++sched_idx;
          });
          const Matrix a = random_matrix(n, n, 17);
          const Matrix b = random_matrix(n, n, 18);
          (void)alg->run(a, b, m);
          ++runs;
          all.merge(std::move(found));
        }
      };

  for (const std::uint32_t dim : dims) {
    const Hypercube cube(dim);
    for (const PortModel port : ports) {
      lint_registry(algo::all_algorithms(), cube, port);
      lint_registry(abft::all_protected(), cube, port);
    }
  }

  // Static (a, b) of every collective builder vs. the Table 1 closed forms;
  // item size a multiple of dim so the multi-port chunking is exact.
  for (const std::uint32_t dim : dims) {
    for (const PortModel port : ports) {
      const std::string context = "builder audit on " +
                                  std::to_string(1u << dim) + " nodes (" +
                                  to_string(port) + ")";
      merge_with_context(
          all, analysis::audit_collective_builders(dim, dim * 8u, port),
          context);
    }
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << diagnostics_json(all) << "\n";
  }
  if (json) {
    std::cout << diagnostics_json(all) << "\n";
  } else {
    std::cout << "hcmm_lint: " << runs << " algorithm runs, "
              << schedules_checked << " schedules analyzed, " << skipped
              << " combinations skipped (unsupported/inapplicable)\n";
    if (all.empty()) {
      std::cout << "no findings\n";
    } else {
      std::cout << all.to_string();
      std::cout << all.error_count() << " error(s), "
                << all.count(analysis::Severity::kWarning) << " warning(s)\n";
    }
  }
  return all.has_errors() ? 1 : 0;
}
