// hcmm_rank: the multi-process face of the socket transport.
//
// Worker mode (--worker --local R) hosts one rank of a P-rank SPMD job in
// its own OS process: it binds a loopback listener, reports the port on
// stdout (`PORT R port`), reads everyone's ports back on stdin
// (`PORTS p0 ... pP-1`), joins the full mesh, and runs the requested
// algorithm --rounds times on identical seeded operands.  Because the SPMD
// ports write result blocks only for the ranks that executed locally, the
// worker's output matrix is the *partial* product of its rank — emitted as
// exact IEEE-754 bit patterns (`ROW i hex16...`) so the harness can merge
// and compare without any decimal round trip.
//
// Harness mode (--launch) fork/execs one worker per rank from
// /proc/self/exe, brokers the port exchange over pipes, merges the partial
// outputs by bit pattern (an entry is owned by whichever worker produced a
// nonzero bit pattern; two different nonzero patterns for one entry is a
// layout violation), and with --check verifies the merged product is
// *bit-identical* to the same algorithm run in-process on the mailbox
// transport — the cross-backend determinism guarantee the runtime promises.
//
// --kill R exercises the failure ladder for real: workers run an unbounded
// round loop, the harness SIGKILLs rank R once the mesh is up, and every
// survivor must abort with a *located* diagnosis naming rank R (dead-peer
// wait, lost connection after bounded reconnects, or heartbeat-horizon
// expiry — never a bare deadlock timeout).  The harness then executes the
// ladder's restart rung: relaunch the full job fresh and require a correct,
// checked product.  --wire applies a FaultPlan wire spec (wdrop=...;
// wflip=...) to every worker, so the kill/recovery drill can run over a
// genuinely lossy wire.
//
// Usage:
//   hcmm_rank --launch --ranks P [--algo cannon] [--n N] [--seed S]
//             [--wire SPEC] [--kill R] [--check] [--timeout-ms T] [--json]
//   hcmm_rank --worker --ranks P --local R [... same job options]

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hcmm/fault/fuzz.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/runtime/socket_transport.hpp"
#include "hcmm/runtime/spmd_matmul.hpp"
#include "hcmm/support/check.hpp"

namespace {

using namespace hcmm;

constexpr const char* kUsage =
    "usage: hcmm_rank --launch --ranks P [--algo NAME] [--n N] [--seed S]\n"
    "                 [--wire SPEC] [--kill R] [--check] [--timeout-ms T]\n"
    "                 [--rounds K] [--json]\n"
    "       hcmm_rank --worker --ranks P --local R [same job options]\n";

struct Options {
  bool worker = false;
  bool launch = false;
  bool check = false;
  bool json = false;
  std::uint32_t ranks = 0;
  std::uint32_t local = 0;
  bool have_local = false;
  std::int64_t kill = -1;
  std::string algo = "cannon";
  std::size_t n = 16;
  std::uint64_t seed = 7;
  std::uint64_t rounds = 1;
  std::uint64_t repeat = 1;
  std::uint64_t timeout_ms = 8000;
  std::string wire_spec;
};

[[nodiscard]] std::uint64_t parse_u64_arg(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  HCMM_CHECK(end != text && *end == '\0' && errno != ERANGE,
             "hcmm_rank: " << flag << " expects an unsigned integer, got \""
                           << text << "\"");
  return v;
}

[[nodiscard]] Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      HCMM_CHECK(i + 1 < argc, "hcmm_rank: " << arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--worker") {
      opt.worker = true;
    } else if (arg == "--launch") {
      opt.launch = true;
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--ranks") {
      opt.ranks = static_cast<std::uint32_t>(parse_u64_arg("--ranks", value()));
    } else if (arg == "--local") {
      opt.local = static_cast<std::uint32_t>(parse_u64_arg("--local", value()));
      opt.have_local = true;
    } else if (arg == "--kill") {
      opt.kill =
          static_cast<std::int64_t>(parse_u64_arg("--kill", value()));
    } else if (arg == "--algo") {
      opt.algo = value();
    } else if (arg == "--n") {
      opt.n = parse_u64_arg("--n", value());
    } else if (arg == "--seed") {
      opt.seed = parse_u64_arg("--seed", value());
    } else if (arg == "--rounds") {
      opt.rounds = parse_u64_arg("--rounds", value());
    } else if (arg == "--repeat") {
      opt.repeat = parse_u64_arg("--repeat", value());
    } else if (arg == "--timeout-ms") {
      opt.timeout_ms = parse_u64_arg("--timeout-ms", value());
    } else if (arg == "--wire") {
      opt.wire_spec = value();
    } else {
      std::cerr << kUsage;
      HCMM_CHECK(false, "hcmm_rank: unknown argument " << arg);
    }
  }
  HCMM_CHECK(opt.worker != opt.launch,
             "hcmm_rank: exactly one of --worker / --launch required");
  HCMM_CHECK(opt.ranks >= 1, "hcmm_rank: --ranks required");
  HCMM_CHECK(!opt.worker || opt.have_local,
             "hcmm_rank: --worker needs --local R");
  HCMM_CHECK(rt::spmd_by_name(opt.algo) != nullptr,
             "hcmm_rank: unknown algorithm \"" << opt.algo << "\"");
  return opt;
}

[[nodiscard]] fault::WireFaultSpec parse_wire(const std::string& spec) {
  if (spec.empty()) return {};
  return fault::plan_from_spec(spec).wire;
}

[[nodiscard]] std::string hex_word(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

[[nodiscard]] double word_from_hex(const std::string& hex) {
  const std::uint64_t bits = std::stoull(hex, nullptr, 16);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

[[nodiscard]] std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

// ---------------------------------------------------------------- worker --

int run_worker(const Options& opt) {
  rt::SocketTransport::Config cfg;
  cfg.ranks = opt.ranks;
  cfg.local_ranks = {opt.local};
  // Failure-detector horizon at half the recv budget: a dead peer is
  // diagnosed by heartbeat silence before the waiter's own deadline can
  // expire into an unlocated timeout.
  cfg.horizon = std::chrono::milliseconds(
      static_cast<std::int64_t>(std::max<std::uint64_t>(opt.timeout_ms / 2, 1)));
  cfg.wire = parse_wire(opt.wire_spec);

  auto transport = cfg.wire.any()
                       ? std::make_unique<rt::LossyTransport>(cfg)
                       : std::make_unique<rt::SocketTransport>(cfg);
  std::cout << "PORT " << opt.local << " " << transport->listen_port(opt.local)
            << "\n"
            << std::flush;

  std::string line;
  HCMM_CHECK(std::getline(std::cin, line) && line.rfind("PORTS ", 0) == 0,
             "hcmm_rank: worker expected a PORTS line, got \"" << line << "\"");
  std::istringstream in(line.substr(6));
  std::vector<std::uint16_t> ports(opt.ranks, 0);
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    unsigned p = 0;
    HCMM_CHECK(static_cast<bool>(in >> p) && p != 0 && p <= 65535,
               "hcmm_rank: bad port for rank " << r);
    ports[r] = static_cast<std::uint16_t>(p);
  }
  transport->connect_mesh(ports);
  std::cout << "READY " << opt.local << "\n" << std::flush;

  rt::Team team(std::move(transport),
                std::chrono::milliseconds(
                    static_cast<std::int64_t>(opt.timeout_ms)));
  const rt::SpmdAlgo& algo = *rt::spmd_by_name(opt.algo);
  const Matrix a = random_matrix(opt.n, opt.n, opt.seed);
  const Matrix b = random_matrix(opt.n, opt.n, opt.seed + 1);

  Matrix out(0, 0);
  try {
    for (std::uint64_t round = 0; round < opt.rounds; ++round) {
      out = algo.fn(team, a, b);
    }
  } catch (const std::exception& e) {
    std::cout << "ERROR " << opt.local << " " << one_line(e.what()) << "\n"
              << std::flush;
    return 2;
  }
  for (std::size_t i = 0; i < out.rows(); ++i) {
    std::cout << "ROW " << i;
    for (std::size_t j = 0; j < out.cols(); ++j) {
      std::cout << " " << hex_word(out(i, j));
    }
    std::cout << "\n";
  }
  const auto ws = team.wire_stats();
  std::cout << "STATS " << opt.local << " frames=" << ws.frames_sent
            << " retransmits=" << ws.retransmits << " crc=" << ws.crc_rejects
            << " reconnects=" << ws.reconnects << "\n"
            << "DONE " << opt.local << "\n"
            << std::flush;
  // Hold the endpoint open until the harness has seen DONE from *every*
  // worker: exiting now would close this rank's sockets while a slower peer
  // is still mid-run, and the peer's failure detector would (correctly, from
  // its point of view) diagnose the vanished process as a death.  This is
  // the job-level finalize handshake — the transport itself stays honest
  // about vanished peers.
  HCMM_CHECK(std::getline(std::cin, line) && line == "BYE",
             "hcmm_rank: worker expected BYE, got \"" << line << "\"");
  return 0;
}

// --------------------------------------------------------------- harness --

struct Worker {
  pid_t pid = -1;
  int to_child = -1;    // harness writes the PORTS line here
  int from_child = -1;  // harness reads PORT/READY/ROW/... here
  std::FILE* in = nullptr;
  std::string pending;  // buffered but unparsed child output
  bool ready = false;
  int exit_code = -1;
  std::string error;  // the worker's ERROR line, if any
};

/// Reads one line from the child (blocking); false on EOF.
[[nodiscard]] bool read_line(Worker& w, std::string& out) {
  out.clear();
  char buf[4096];
  while (std::fgets(buf, sizeof buf, w.in) != nullptr) {
    out += buf;
    if (!out.empty() && out.back() == '\n') {
      out.pop_back();
      return true;
    }
  }
  return !out.empty();
}

void spawn_workers(const Options& opt, std::uint64_t rounds,
                   std::vector<Worker>& workers) {
  workers.assign(opt.ranks, Worker{});
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    int down[2];  // harness -> worker stdin
    int up[2];    // worker stdout -> harness
    HCMM_CHECK(pipe(down) == 0 && pipe(up) == 0, "hcmm_rank: pipe failed");
    const pid_t pid = fork();
    HCMM_CHECK(pid >= 0, "hcmm_rank: fork failed");
    if (pid == 0) {
      dup2(down[0], STDIN_FILENO);
      dup2(up[1], STDOUT_FILENO);
      close(down[0]);
      close(down[1]);
      close(up[0]);
      close(up[1]);
      std::vector<std::string> args = {
          "/proc/self/exe", "--worker",
          "--ranks",        std::to_string(opt.ranks),
          "--local",        std::to_string(r),
          "--algo",         opt.algo,
          "--n",            std::to_string(opt.n),
          "--seed",         std::to_string(opt.seed),
          "--rounds",       std::to_string(rounds),
          "--timeout-ms",   std::to_string(opt.timeout_ms)};
      if (!opt.wire_spec.empty()) {
        args.push_back("--wire");
        args.push_back(opt.wire_spec);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv("/proc/self/exe", argv.data());
      std::perror("hcmm_rank: execv");
      _exit(127);
    }
    close(down[0]);
    close(up[1]);
    Worker& w = workers[r];
    w.pid = pid;
    w.to_child = down[1];
    w.from_child = up[0];
    w.in = fdopen(up[0], "r");
    HCMM_CHECK(w.in != nullptr, "hcmm_rank: fdopen failed");
  }
}

void broker_ports(const Options& opt, std::vector<Worker>& workers) {
  std::vector<std::uint16_t> ports(opt.ranks, 0);
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    std::string line;
    HCMM_CHECK(read_line(workers[r], line) && line.rfind("PORT ", 0) == 0,
               "hcmm_rank: worker " << r << " said \"" << line
                                    << "\" instead of PORT");
    unsigned rank = 0;
    unsigned port = 0;
    HCMM_CHECK(std::sscanf(line.c_str(), "PORT %u %u", &rank, &port) == 2 &&
                   rank == r && port != 0 && port <= 65535,
               "hcmm_rank: malformed PORT line \"" << line << "\"");
    ports[r] = static_cast<std::uint16_t>(port);
  }
  std::ostringstream msg;
  msg << "PORTS";
  for (const std::uint16_t p : ports) msg << " " << p;
  msg << "\n";
  const std::string text = msg.str();
  for (Worker& w : workers) {
    HCMM_CHECK(write(w.to_child, text.data(), text.size()) ==
                   static_cast<ssize_t>(text.size()),
               "hcmm_rank: PORTS write failed");
  }
  // The mesh is fully up once every worker's own dials have completed.
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    std::string line;
    HCMM_CHECK(read_line(workers[r], line) &&
                   line == "READY " + std::to_string(r),
               "hcmm_rank: worker " << r << " said \"" << line
                                    << "\" instead of READY");
    workers[r].ready = true;
  }
}

/// Read a worker's output up to its DONE line (or EOF on error/kill);
/// partial rows land in @p partial (already sized n x n, zero) by bit
/// pattern.  The worker then blocks awaiting BYE — see finish_worker.
void drain_worker(const Options& opt, Worker& w, Matrix* partial) {
  std::string line;
  while (read_line(w, line)) {
    if (line.rfind("ROW ", 0) == 0 && partial != nullptr) {
      std::istringstream in(line.substr(4));
      std::size_t row = 0;
      in >> row;
      HCMM_CHECK(row < opt.n, "hcmm_rank: bad ROW index " << row);
      std::string hex;
      for (std::size_t j = 0; j < opt.n && in >> hex; ++j) {
        (*partial)(row, j) = word_from_hex(hex);
      }
    } else if (line.rfind("ERROR ", 0) == 0) {
      w.error = line;
    } else if (line.rfind("DONE ", 0) == 0) {
      return;  // endpoint stays open until finish_worker says BYE
    }
  }
}

/// Release the worker (the finalize handshake: every endpoint stays up
/// until all workers have drained) and reap it.
void finish_worker(Worker& w) {
  // EPIPE is fine: a worker that errored or was killed is already gone.
  (void)!write(w.to_child, "BYE\n", 4);
  int status = 0;
  HCMM_CHECK(waitpid(w.pid, &status, 0) == w.pid, "hcmm_rank: waitpid failed");
  w.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                  : 128 + WTERMSIG(status);
  std::fclose(w.in);
  close(w.to_child);
}

/// Merge partial products: an entry belongs to whichever worker produced a
/// nonzero bit pattern for it.  Two distinct nonzero patterns would mean two
/// ranks wrote the same output block — a layout violation.
void merge_partial(const Matrix& partial, Matrix& merged) {
  for (std::size_t i = 0; i < partial.rows(); ++i) {
    for (std::size_t j = 0; j < partial.cols(); ++j) {
      const double v = partial(i, j);
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof bits);
      if (bits == 0) continue;
      std::uint64_t have = 0;
      std::memcpy(&have, &merged(i, j), sizeof have);
      HCMM_CHECK(have == 0 || have == bits,
                 "hcmm_rank: two workers produced entry (" << i << ", " << j
                                                           << ")");
      merged(i, j) = v;
    }
  }
}

/// One full multi-process run; returns the merged product.  @p killed
/// (optional) receives the per-worker error lines when --kill is active.
Matrix launch_once(const Options& opt, std::uint64_t rounds,
                   std::vector<Worker>& workers) {
  spawn_workers(opt, rounds, workers);
  broker_ports(opt, workers);
  Matrix merged(opt.n, opt.n);
  std::vector<Matrix> partials(opt.ranks, Matrix(opt.n, opt.n));
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    drain_worker(opt, workers[r], &partials[r]);
  }
  for (Worker& w : workers) finish_worker(w);
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    HCMM_CHECK(workers[r].exit_code == 0,
               "hcmm_rank: worker " << r << " exited with code "
                                    << workers[r].exit_code << " "
                                    << workers[r].error);
    merge_partial(partials[r], merged);
  }
  return merged;
}

[[nodiscard]] bool bit_identical(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  return std::memcmp(x.data().data(), y.data().data(),
                     x.rows() * x.cols() * sizeof(double)) == 0;
}

int check_against_reference(const Options& opt, const Matrix& merged) {
  const Matrix a = random_matrix(opt.n, opt.n, opt.seed);
  const Matrix b = random_matrix(opt.n, opt.n, opt.seed + 1);
  rt::Team team(opt.ranks, std::chrono::milliseconds(30000));
  const Matrix reference = rt::spmd_by_name(opt.algo)->fn(team, a, b);
  if (!bit_identical(merged, reference)) {
    std::cerr << "hcmm_rank: socket product is NOT bit-identical to the "
                 "mailbox product\n";
    return 1;
  }
  const double err = max_abs_diff(merged, multiply_naive(a, b));
  if (err > 1e-9) {
    std::cerr << "hcmm_rank: merged product diverges from the serial oracle "
                 "by "
              << err << "\n";
    return 1;
  }
  std::cout << "CHECK identical-to-mailbox and oracle-correct\n";
  return 0;
}

int run_kill_drill(const Options& opt) {
  HCMM_CHECK(opt.kill >= 0 && opt.kill < static_cast<std::int64_t>(opt.ranks),
             "hcmm_rank: --kill rank out of range");
  const auto victim = static_cast<std::uint32_t>(opt.kill);

  // Phase 1: unbounded rounds, then kill the victim once the mesh is up.
  std::vector<Worker> workers;
  spawn_workers(opt, /*rounds=*/1'000'000'000, workers);
  broker_ports(opt, workers);
  usleep(300'000);  // let the round loop get going
  std::cout << "KILL rank " << victim << " (pid " << workers[victim].pid
            << ")\n";
  HCMM_CHECK(kill(workers[victim].pid, SIGKILL) == 0,
             "hcmm_rank: SIGKILL failed");

  bool all_located = true;
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    drain_worker(opt, workers[r], nullptr);
  }
  for (Worker& w : workers) finish_worker(w);
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    if (r == victim) continue;
    const std::string needle_dead =
        "dead rank " + std::to_string(victim);
    const std::string needle_conn =
        "connection to rank " + std::to_string(victim);
    const std::string needle_rank = "rank " + std::to_string(victim);
    const bool located =
        workers[r].exit_code == 2 &&
        (workers[r].error.find(needle_dead) != std::string::npos ||
         workers[r].error.find(needle_conn) != std::string::npos ||
         workers[r].error.find(needle_rank) != std::string::npos);
    std::cout << "SURVIVOR " << r << " exit=" << workers[r].exit_code << " "
              << workers[r].error << "\n";
    if (!located) {
      std::cerr << "hcmm_rank: survivor " << r
                << " did not diagnose the killed rank\n";
      all_located = false;
    }
  }
  if (!all_located) return 1;
  std::cout << "LOCATED all survivors diagnosed rank " << victim << "\n";

  // Phase 2: the restart rung — relaunch the whole job and demand a
  // correct, bit-identical product.
  std::vector<Worker> fresh;
  const Matrix merged = launch_once(opt, /*rounds=*/1, fresh);
  const int rc = check_against_reference(opt, merged);
  if (rc == 0) std::cout << "RECOVERED restart rung produced a clean run\n";
  return rc;
}

int run_launch(const Options& opt) {
  if (opt.kill >= 0) return run_kill_drill(opt);
  std::vector<Worker> workers;
  Matrix merged(0, 0);
  for (std::uint64_t rep = 0; rep < opt.repeat; ++rep) {
    merged = launch_once(opt, opt.rounds, workers);
  }
  int rc = 0;
  if (opt.check) rc = check_against_reference(opt, merged);
  if (rc == 0) {
    std::cout << "OK " << opt.algo << " p=" << opt.ranks << " n=" << opt.n
              << (opt.wire_spec.empty() ? ""
                                        : " wire=" + opt.wire_spec)
              << "\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);  // a reaped worker's pipe is not an error
  try {
    const Options opt = parse_args(argc, argv);
    return opt.worker ? run_worker(opt) : run_launch(opt);
  } catch (const std::exception& e) {
    std::cerr << "hcmm_rank: " << e.what() << "\n";
    return 1;
  }
}
